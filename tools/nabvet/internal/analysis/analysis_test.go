package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"nab/tools/nabvet/internal/analysis"
)

// flagBad reports every call to a function literally named bad, giving
// the suppression machinery something deterministic to silence.
var flagBad = &analysis.Analyzer{
	Name: "flagbad",
	Doc:  "test analyzer: report calls to bad()",
	Run: func(p *analysis.Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "bad" {
						p.Report(c.Pos(), "call to bad")
					}
				}
				return true
			})
		}
		return nil
	},
}

func unit(t *testing.T, src string) *analysis.Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := (&types.Config{}).Check("fix", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Unit{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

func messages(t *testing.T, src string) []string {
	t.Helper()
	diags, err := analysis.Run(unit(t, src), []*analysis.Analyzer{flagBad})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, d := range diags {
		out = append(out, d.Message)
	}
	return out
}

const body = "package fix\nfunc bad() {}\n"

func TestUnsuppressedFinding(t *testing.T) {
	got := messages(t, body+"func f() { bad() }\n")
	if len(got) != 1 || got[0] != "call to bad" {
		t.Fatalf("got %q, want the one finding", got)
	}
}

func TestSuppressionSameLine(t *testing.T) {
	got := messages(t, body+"func f() { bad() } //nab:ignore flagbad -- reviewed\n")
	if len(got) != 0 {
		t.Fatalf("got %q, want silence", got)
	}
}

func TestSuppressionLineAbove(t *testing.T) {
	got := messages(t, body+"func f() {\n\t//nab:ignore flagbad -- reviewed\n\tbad()\n}\n")
	if len(got) != 0 {
		t.Fatalf("got %q, want silence", got)
	}
}

func TestSuppressionNeedsReason(t *testing.T) {
	got := messages(t, body+"func f() { bad() } //nab:ignore flagbad\n")
	if len(got) != 1 || !strings.Contains(got[0], "without a justification") {
		t.Fatalf("got %q, want the missing-reason finding", got)
	}
}

func TestSuppressionWrongAnalyzer(t *testing.T) {
	// A directive naming only a nonexistent analyzer suppresses nothing
	// and is reported as a typo; the underlying finding survives too.
	got := messages(t, body+"func f() { bad() } //nab:ignore nosuch -- reviewed\n")
	if len(got) != 2 {
		t.Fatalf("got %q, want the finding plus the unknown-analyzer report", got)
	}
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "call to bad") || !strings.Contains(joined, "names no known analyzer") {
		t.Fatalf("got %q", got)
	}
}

func TestSuppressionMultipleNames(t *testing.T) {
	got := messages(t, body+"func f() { bad() } //nab:ignore other,flagbad -- reviewed\n")
	if len(got) != 0 {
		t.Fatalf("got %q, want silence", got)
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	diags, err := analysis.Run(unit(t, body+"func f() { bad() }\nfunc g() { bad() }\n"), []*analysis.Analyzer{flagBad})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %v, want two findings", diags)
	}
	if diags[0].Pos.Line >= diags[1].Pos.Line {
		t.Fatalf("diagnostics out of line order: %v", diags)
	}
}
