package allocfree_test

import (
	"testing"

	"nab/tools/nabvet/internal/allocfree"
	"nab/tools/nabvet/internal/analysis"
	"nab/tools/nabvet/internal/analysistest"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{allocfree.Analyzer})
}
