// Package allocfreedata seeds one violation of every construct the
// allocfree analyzer rejects inside //nab:allocfree functions, next to
// the legitimate shapes (assign-back appends, cold error paths,
// unannotated functions) that must stay silent.
package allocfreedata

import "fmt"

//nab:allocfree
func hot(buf []byte, n int) []byte {
	s := fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates`
	_ = s
	buf = append(buf, byte(n)) // assign-back: growth is the caller's, tracked
	tmp := append(buf, 0)      // want `append not assigned back`
	_ = tmp
	m := make([]byte, n) // want `make \(heap allocation\)`
	_ = m
	return buf
}

// coldError's allocation sits on the bail-out branch: anything inside a
// return or panic is exempt.
//
//nab:allocfree
func coldError(buf []byte, n int) ([]byte, error) {
	if n > len(buf) {
		return nil, fmt.Errorf("n %d exceeds %d", n, len(buf))
	}
	return buf[:n], nil
}

// free is unannotated: the analyzer has no opinion.
func free(n int) []byte {
	return make([]byte, n)
}

//nab:allocfree
func boxed(v int) {
	sink(v) // want `v boxed into interface`
	sinkInt(v)
	sinkPtr(&v)
}

func sink(any)     {}
func sinkInt(int)  {}
func sinkPtr(*int) {}

//nab:allocfree
func closure(n int) int {
	f := func() int { return n } // want `function literal`
	return f()
}

//nab:allocfree
func spawn() {
	go work() // want `go statement`
}

func work() {}

//nab:allocfree
func concat(a, b string) string {
	s := a + b          // want `non-constant string concatenation`
	const c = "x" + "y" // constant-folded: free
	return s + c        // on the return path: exempt
}

//nab:allocfree
func convert(s string) []byte {
	b := []byte(s) // want `\[\]byte conversion copies`
	return b
}

//nab:allocfree
func literal() {
	s := []int{1, 2, 3} // want `slice literal \(heap allocation\)`
	_ = s
	m := map[int]int{} // want `map literal \(heap allocation\)`
	_ = m
}

// justified shows an accepted suppression with a reason.
//
//nab:allocfree
func justified(n int) []byte {
	//nab:ignore allocfree -- fixture: cold fallback past an inline budget
	b := make([]byte, n)
	return b
}
