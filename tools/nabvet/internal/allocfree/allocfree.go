// Package allocfree vets functions annotated with a //nab:allocfree
// doc-comment line against constructs that allocate on the steady-state
// path. The repo's hot paths (metric increments, frame encoding, WAL
// record append) carry testing.AllocsPerRun pins; this analyzer is the
// static half of that contract — it names the allocating construct at
// the line that introduced it instead of leaving a failed 0-allocs pin
// to bisect.
//
// Flagged inside an annotated function: fmt calls, make/new, composite
// literals that escape to the heap (slice, map, &T{}), string
// concatenation and string<->[]byte conversions, function literals, go
// statements, appends that may grow (not assigned back to the slice
// they extend), and concrete values boxed into interfaces.
//
// Two shapes are deliberately exempt. Anything syntactically inside a
// return or panic is a cold path — error construction with fmt.Errorf
// on the bail-out branch is idiomatic here and never executes on the
// steady state. And calls to ordinary functions are not flagged at all:
// composition is the dynamic pins' job, and an intraprocedural analyzer
// second-guessing callees would force annotation sprawl.
package allocfree

import (
	"go/ast"
	"go/types"
	"strings"

	"nab/tools/nabvet/internal/analysis"
)

// Analyzer is the allocfree check.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "functions annotated //nab:allocfree must not contain allocating constructs outside return/panic paths",
	Run:  run,
}

// Annotation marks a function as steady-state allocation-free when it
// appears as its own line in the function's doc comment.
const Annotation = "//nab:allocfree"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !Annotated(fd) {
				continue
			}
			(&checker{pass: pass}).block(fd.Body, false)
		}
	}
	return nil
}

// Annotated reports whether fd's doc comment carries the
// //nab:allocfree marker.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if text, ok := strings.CutPrefix(c.Text, Annotation); ok {
			if text == "" || text[0] == ' ' || text[0] == '\t' {
				return true
			}
		}
	}
	return false
}

type checker struct {
	pass *analysis.Pass
}

// block walks statements; cold is true inside return/panic subtrees,
// where allocation is the acceptable price of bailing out.
func (c *checker) block(n ast.Node, cold bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				c.block(r, true)
			}
			return false
		case *ast.GoStmt:
			c.pass.Report(m.Pos(), "go statement (goroutine start allocates)")
			return false
		case *ast.DeferStmt:
			// defer with a func literal allocates the closure; method
			// and function defers of named funcs are fine.
			if _, lit := m.Call.Fun.(*ast.FuncLit); lit {
				c.pass.Report(m.Pos(), "deferred function literal (closure allocates)")
			}
			return false
		case *ast.FuncLit:
			c.pass.Report(m.Pos(), "function literal (closure may allocate)")
			return false
		case *ast.CallExpr:
			c.call(m, cold)
			return false
		case *ast.CompositeLit:
			c.composite(m, cold)
			return false
		case *ast.BinaryExpr:
			c.concat(m, cold)
			return true
		case *ast.UnaryExpr:
			if m.Op.String() == "&" {
				if _, lit := ast.Unparen(m.X).(*ast.CompositeLit); lit && !cold {
					c.pass.Report(m.Pos(), "&T{...} (heap allocation)")
					return false
				}
			}
			return true
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr, cold bool) {
	for _, a := range call.Args {
		c.block(a, cold || isPanic(c.pass.TypesInfo, call))
	}
	// Conversions: string(b)/[]byte(s)/[]rune(s) copy.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if !cold && converts(c.pass.TypesInfo, call) {
			c.pass.Reportf(call.Pos(), "%s conversion copies (allocates)", types.ExprString(call.Fun))
		}
		return
	}
	switch fn := callee(c.pass.TypesInfo, call).(type) {
	case *types.Builtin:
		switch fn.Name() {
		case "make", "new":
			if !cold {
				c.pass.Reportf(call.Pos(), "%s (heap allocation)", fn.Name())
			}
		case "append":
			if !cold && !c.growsInPlace(call) {
				c.pass.Report(call.Pos(), "append not assigned back to the slice it extends (growth allocates untracked)")
			}
		}
	case *types.Func:
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && !cold {
			c.pass.Reportf(call.Pos(), "fmt.%s allocates (format machinery and boxed arguments)", fn.Name())
			return
		}
		if !cold {
			c.boxing(call, fn)
		}
	}
}

// growsInPlace reports whether an append call is in one of the two
// accepted shapes: `x = append(x, ...)` (the caller owns regrowth) or
// `return append(...)` (ownership transfers out, covered where it
// lands). Detection is syntactic: the parent statement is recovered by
// re-walking, so the rule is approximated as "the call is the sole RHS
// of an assignment whose sole LHS prints like the first argument".
func (c *checker) growsInPlace(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	first := types.ExprString(call.Args[0])
	ok := false
	for _, f := range c.pass.Files {
		if c.pass.Fset.File(f.Pos()) != c.pass.Fset.File(call.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			as, isAssign := n.(*ast.AssignStmt)
			if !isAssign || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			if ast.Unparen(as.Rhs[0]) == call && types.ExprString(as.Lhs[0]) == first {
				ok = true
			}
			return true
		})
	}
	return ok
}

func (c *checker) composite(lit *ast.CompositeLit, cold bool) {
	for _, e := range lit.Elts {
		c.block(e, cold)
	}
	if cold {
		return
	}
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.pass.Report(lit.Pos(), "slice literal (heap allocation)")
	case *types.Map:
		c.pass.Report(lit.Pos(), "map literal (heap allocation)")
	}
}

func (c *checker) concat(be *ast.BinaryExpr, cold bool) {
	if cold || be.Op.String() != "+" {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[be]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return
	}
	if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
		c.pass.Report(be.Pos(), "non-constant string concatenation (allocates)")
	}
}

// boxing flags concrete non-pointer arguments passed into interface
// parameters — the conversion heap-allocates the value's box.
func (c *checker) boxing(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := c.pass.TypesInfo.Types[arg]
		if !ok || tv.Value != nil { // constants box from read-only storage
			continue
		}
		at := tv.Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: fits the iface word without copying
		}
		c.pass.Reportf(arg.Pos(), "%s boxed into interface %s (allocates)", types.ExprString(arg), pt.String())
	}
}

func converts(info *types.Info, call *ast.CallExpr) bool {
	to := info.TypeOf(call.Fun)
	from := info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return false
	}
	if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil {
		return false // constant conversion
	}
	return stringish(to) != stringish(from) && (stringish(to) || stringish(from)) && bytesOrString(to) && bytesOrString(from)
}

func stringish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func bytesOrString(t types.Type) bool {
	if stringish(t) {
		return true
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
