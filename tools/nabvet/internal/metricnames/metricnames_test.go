package metricnames_test

import (
	"testing"

	"nab/tools/nabvet/internal/analysis"
	"nab/tools/nabvet/internal/analysistest"
	"nab/tools/nabvet/internal/metricnames"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{metricnames.Analyzer})
}
