// Package metricnames enforces the metric naming conventions at every
// nab/internal/metrics registration site. The runtime registry already
// panics on names outside nab_[a-z0-9_]+, but that check fires at
// daemon startup; this analyzer moves it to vet time and adds what the
// runtime cannot know — the metric kind. Counters must read as
// monotonic totals (_total) and histograms must carry their unit
// (_seconds, _records or _bytes), because Prometheus queries are
// written against the suffix, not the help string.
//
// Names are resolved by constant propagation: the first argument of a
// registration call must fold to a compile-time string constant. A name
// computed at runtime defeats grep, dashboards and this analyzer at
// once, so non-constant names are themselves findings.
package metricnames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"nab/tools/nabvet/internal/analysis"
)

// Analyzer is the metricnames check.
var Analyzer = &analysis.Analyzer{
	Name: "metricnames",
	Doc:  "metric registration sites must use constant nab_* snake_case names with kind-correct suffixes",
	Run:  run,
}

// metricsPath is the registry package whose constructors are vetted.
const metricsPath = "nab/internal/metrics"

// constructors maps registration functions to the suffix rule of the
// metric kind they create. Both the package-level helpers and the
// (*Registry) methods share these names.
var constructors = map[string]func(name string) string{
	"NewCounter":      counterRule,
	"NewCounterVec":   counterRule,
	"NewGauge":        func(string) string { return "" },
	"NewHistogram":    histogramRule,
	"NewHistogramVec": histogramRule,
}

var nameRe = regexp.MustCompile(`^nab_[a-z0-9_]+$`)
var labelRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func counterRule(name string) string {
	if !strings.HasSuffix(name, "_total") {
		return "counter %q must end in _total"
	}
	return ""
}

func histogramRule(name string) string {
	for _, suf := range []string{"_seconds", "_records", "_bytes"} {
		if strings.HasSuffix(name, suf) {
			return ""
		}
	}
	return "histogram %q must carry a unit suffix (_seconds, _records or _bytes)"
}

func run(pass *analysis.Pass) error {
	// The registry package itself necessarily handles names as runtime
	// values (its package-level helpers forward their name parameter);
	// the constant-name convention binds the registration sites outside.
	if pass.Pkg.Path() == metricsPath {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != metricsPath {
				return true
			}
			rule, isCtor := constructors[fn.Name()]
			if !isCtor || len(call.Args) == 0 {
				return true
			}
			name, isConst := constString(pass.TypesInfo, call.Args[0])
			if !isConst {
				pass.Reportf(call.Args[0].Pos(), "metric name is not a compile-time constant (dashboards and vetting need a greppable literal)")
				return true
			}
			if !nameRe.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric %q must match nab_[a-z0-9_]+", name)
			} else if msg := rule(name); msg != "" {
				pass.Reportf(call.Args[0].Pos(), msg, name)
			}
			checkLabels(pass, fn.Name(), call)
			return true
		})
	}
	return nil
}

// checkLabels vets the label-name arguments of Vec constructors:
// constant snake_case, and never "le" (reserved by histogram buckets).
func checkLabels(pass *analysis.Pass, ctor string, call *ast.CallExpr) {
	if !strings.HasSuffix(ctor, "Vec") || len(call.Args) < 3 {
		return
	}
	// Signature shapes: NewCounterVec(name, help, labels...) and
	// NewHistogramVec(name, help, buckets, labels...); label args are the
	// trailing string constants after the first two.
	for _, arg := range call.Args[2:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil || !stringType(t) {
			continue // buckets slice or non-string
		}
		label, isConst := constString(pass.TypesInfo, arg)
		if !isConst {
			pass.Reportf(arg.Pos(), "metric label is not a compile-time constant")
			continue
		}
		if label == "le" {
			pass.Reportf(arg.Pos(), "label \"le\" is reserved for histogram buckets")
		} else if !labelRe.MatchString(label) {
			pass.Reportf(arg.Pos(), "label %q must be snake_case ([a-z][a-z0-9_]*)", label)
		}
	}
}

func stringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
