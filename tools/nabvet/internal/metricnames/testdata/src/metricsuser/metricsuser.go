// Package metricsuser registers metrics against the stub registry: one
// well-formed registration per kind beside every naming violation the
// analyzer must catch.
package metricsuser

import "nab/internal/metrics"

const frameCount = "nab_frames_total"

var (
	good     = metrics.NewCounter(frameCount, "frames moved") // constant-folded through the const: fine
	goodG    = metrics.NewGauge("nab_inflight", "in-flight instances")
	goodHist = metrics.NewHistogram("nab_fsync_seconds", "fsync latency", nil)
	goodVec  = metrics.NewCounterVec("nab_link_frames_total", "per-link frames", "link")

	badPrefix = metrics.NewCounter("frames_total", "no namespace")                  // want `metric "frames_total" must match nab_`
	badSuffix = metrics.NewCounter("nab_frames", "not a total")                     // want `counter "nab_frames" must end in _total`
	badCase   = metrics.NewGauge("nab_inFlight", "camel case")                      // want `metric "nab_inFlight" must match nab_`
	badHist   = metrics.NewHistogram("nab_fsync_time", "no unit", nil)              // want `histogram "nab_fsync_time" must carry a unit suffix`
	badLabel  = metrics.NewCounterVec("nab_rx_total", "bad label", "Link")          // want `label "Link" must be snake_case`
	leLabel   = metrics.NewHistogramVec("nab_delay_seconds", "reserved", nil, "le") // want `label "le" is reserved for histogram buckets`
	dynamic   = metrics.NewCounter(pick(), "computed name")                         // want `metric name is not a compile-time constant`
)

func pick() string { return "nab_x_total" }
