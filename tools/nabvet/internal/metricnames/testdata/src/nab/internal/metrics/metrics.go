// Package metrics is a signature-compatible stub of the repo's
// nab/internal/metrics registry, so fixtures register against the exact
// constructor shapes the analyzer matches by package path and name.
package metrics

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}
type HistogramVec struct{}

func NewCounter(name, help string) *Counter { return &Counter{} }
func NewGauge(name, help string) *Gauge     { return &Gauge{} }
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{}
}
