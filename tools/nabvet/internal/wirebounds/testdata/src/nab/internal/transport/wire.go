// Package transport impersonates the repo's nab/internal/transport
// import path so the wirebounds analyzer's package scoping applies.
// Every decoder here handles untrusted wire bytes; the fixtures pair
// each accepted guard (len/cap comparison, Varint result check, range)
// with the unguarded access the analyzer must flag.
package transport

import (
	"encoding/binary"
	"errors"
)

// DecodeHeader length-checks before touching raw: fine.
func DecodeHeader(raw []byte) (uint32, byte, bool) {
	if len(raw) < 5 {
		return 0, 0, false
	}
	n := binary.BigEndian.Uint32(raw[0:4])
	return n, raw[4], true
}

// decodeNaked trusts its input.
func decodeNaked(raw []byte) byte {
	return raw[0] // want `index into raw without a preceding length check`
}

// decodeNakedSlice trusts its input's length.
func decodeNakedSlice(raw []byte) []byte {
	return raw[2:] // want `slice of raw without a preceding length check`
}

// DecodeVarint relies on the Varint contract: n <= 0 on short input.
func DecodeVarint(b []byte) ([]byte, int64, bool) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return b, 0, false
	}
	return b[n:], v, true
}

// readSum indexes under a range over the same slice: bounded.
func readSum(b []byte) (s int) {
	for i := range b {
		s += int(b[i])
	}
	return s
}

// readFixed decodes from a fixed-size array: the compiler already
// proved those bounds.
func readFixed(hdr [8]byte) uint32 {
	return binary.BigEndian.Uint32(hdr[4:8])
}

// helper is not decoder-shaped; unguarded access is its caller's
// problem, not this analyzer's.
func helper(raw []byte) byte {
	return raw[0]
}

// decoder mirrors the WAL record codec type: every method is in scope
// by receiver name alone.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) flag() bool {
	if len(d.b) < 1 {
		d.err = errShort
		return false
	}
	v := d.b[0] != 0
	d.b = d.b[1:]
	return v
}

func (d *decoder) peek() byte {
	return d.b[0] // want `index into d\.b without a preceding length check`
}

var errShort = errors.New("transport: short buffer")
