// Package wal impersonates the repo's nab/internal/wal import path so
// the wirebounds analyzer's package scoping applies. The fixtures here
// mirror the snapshot-transfer decoders: file containers (Load-prefixed)
// and length-prefixed fold tails, each paired with the unguarded variant
// the analyzer must flag.
package wal

import "encoding/binary"

const magic = "NABSNAP1"

// LoadContainer length-checks the header before slicing: fine.
func LoadContainer(buf []byte) ([]byte, bool) {
	if len(buf) < len(magic)+8 {
		return nil, false
	}
	if string(buf[:len(magic)]) != magic {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(buf[len(magic):])
	payload := buf[len(magic)+8:]
	if uint32(len(payload)) != n {
		return nil, false
	}
	return payload, true
}

// LoadNaked trusts the file header is present.
func LoadNaked(buf []byte) byte {
	return buf[8] // want `index into buf without a preceding length check`
}

// loadTail walks uvarint-framed records, re-checking before every frame:
// the Uvarint result guards the prefix, the len comparison the body.
func loadTail(rest []byte) int {
	frames := 0
	for len(rest) > 0 {
		ln, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < ln {
			return -1
		}
		rest = rest[sz+int(ln):]
		frames++
	}
	return frames
}

// loadTailNaked slices the frame body on the encoder's word alone — no
// Uvarint contract, no length comparison.
func loadTailNaked(rest []byte) []byte {
	return rest[1:9] // want `slice of rest without a preceding length check`
}
