package wirebounds_test

import (
	"testing"

	"nab/tools/nabvet/internal/analysis"
	"nab/tools/nabvet/internal/analysistest"
	"nab/tools/nabvet/internal/wirebounds"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{wirebounds.Analyzer})
}
