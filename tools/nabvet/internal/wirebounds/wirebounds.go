// Package wirebounds vets the byte-level decoders — the frame codec in
// nab/internal/transport and the WAL record codecs in nab/internal/wal
// — for unguarded slice access. These functions are the only code that
// indexes attacker-controlled bytes (every Byzantine peer and every
// torn WAL tail reaches them), so a missing length check is not a
// latent bug but a remotely triggerable panic.
//
// Within a decoder-shaped function (Decode*/decode*/Read*/read*/Load*/
// load* — the Load prefix catches file-container decoders such as the
// WAL's standalone snapshot files — or any
// method on a type named "decoder"), each index or slice expression
// over a []byte must be preceded, earlier in the same function, by a
// guard on that same expression: a len()/cap() comparison, a
// binary.Varint/Uvarint call (whose n<=0 result is the length check),
// or a range statement over it. Fixed-size arrays need no guard — the
// compiler already proved those bounds.
package wirebounds

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"nab/tools/nabvet/internal/analysis"
)

// Analyzer is the wirebounds check.
var Analyzer = &analysis.Analyzer{
	Name: "wirebounds",
	Doc:  "decoders over untrusted bytes must length-check before every slice or index expression",
	Run:  run,
}

// scope is the set of packages holding wire-facing decoders.
var scope = map[string]bool{
	"nab/internal/transport": true,
	"nab/internal/wal":       true,
}

func run(pass *analysis.Pass) error {
	if !scope[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !decoderShaped(fd) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

// decoderShaped reports whether fd handles raw input bytes: named like
// a decoder/reader, or a method on the record-codec decoder type.
func decoderShaped(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	for _, prefix := range []string{"Decode", "decode", "Read", "read", "Load", "load"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok && id.Name == "decoder" {
			return true
		}
	}
	return false
}

// guard records one position at which an expression's length became
// known.
type guard struct {
	expr string
	pos  token.Pos
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	var guards []guard
	add := func(e ast.Expr, pos token.Pos) {
		guards = append(guards, guard{expr: types.ExprString(ast.Unparen(e)), pos: pos})
	}

	// First pass: collect guards anywhere in the function (closures
	// included — the wire codec's get32/get64 helpers read under the
	// header check established before their definition).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			// Comparisons mentioning len(x) or cap(x) guard x.
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				for _, side := range []ast.Expr{n.X, n.Y} {
					if arg := lenCapArg(pass.TypesInfo, side); arg != nil {
						add(arg, n.Pos())
					}
				}
			}
		case *ast.CallExpr:
			// binary.Varint/Uvarint return n<=0 on short input; decoders
			// branch on n before slicing, so the call is the guard.
			if fn := callee(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "encoding/binary" &&
				(fn.Name() == "Varint" || fn.Name() == "Uvarint") && len(n.Args) == 1 {
				add(n.Args[0], n.Pos())
			}
		case *ast.RangeStmt:
			// range x bounds every in-loop index derived from it.
			add(n.X, n.Pos())
		}
		return true
	})

	guarded := func(e ast.Expr, at token.Pos) bool {
		s := types.ExprString(ast.Unparen(e))
		for _, g := range guards {
			if g.expr == s && g.pos < at {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if byteSlice(pass.TypesInfo, n.X) && !guarded(n.X, n.Pos()) {
				pass.Reportf(n.Pos(), "index into %s without a preceding length check (len/cap comparison, Varint/Uvarint, or range)", types.ExprString(n.X))
			}
		case *ast.SliceExpr:
			if byteSlice(pass.TypesInfo, n.X) && !guarded(n.X, n.Pos()) {
				pass.Reportf(n.Pos(), "slice of %s without a preceding length check (len/cap comparison, Varint/Uvarint, or range)", types.ExprString(n.X))
			}
		}
		return true
	})
}

// lenCapArg returns the argument of a len(x)/cap(x) call, or nil.
func lenCapArg(info *types.Info, e ast.Expr) ast.Expr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
		return call.Args[0]
	}
	// Conversions wrapping len, e.g. uint64(len(d.b)).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return lenCapArg(info, call.Args[0])
	}
	return nil
}

// byteSlice reports whether e's type is a byte slice (arrays index with
// compiler-proved bounds and are exempt).
func byteSlice(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
