package determinism_test

import (
	"testing"

	"nab/tools/nabvet/internal/analysis"
	"nab/tools/nabvet/internal/analysistest"
	"nab/tools/nabvet/internal/determinism"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{determinism.Analyzer})
}
