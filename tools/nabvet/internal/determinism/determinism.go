// Package determinism forbids nondeterminism inside the packages whose
// outputs must be byte-identical to the lockstep oracle: wall-clock
// reads, the global math/rand stream, crypto/rand, process-identity
// queries, and map iteration feeding ordered output. Everything this
// repo proves, it proves differentially — one nondeterministic branch
// in a deterministic package and every engine drifts from the oracle.
//
// Scope: nab/internal/core, nab/internal/coding, nab/internal/gf,
// nab/internal/linalg, nab/internal/adversary in full, plus the chaos
// decision path (internal/transport's chaos.go, where every physics
// decision must be a pure function of the seed). Seeded *rand.Rand
// streams are the sanctioned randomness — rand.New(rand.NewSource(seed))
// stays legal; the package-level rand.Intn and friends do not.
//
// Map iteration is flagged only when its order can escape: an append to
// a slice declared outside the loop that is never sorted afterwards in
// the same function, or a channel send from inside the loop. The
// range-then-sort idiom the repo uses for dispute sets stays silent.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"nab/tools/nabvet/internal/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, global math/rand, crypto/rand and order-escaping map iteration in oracle-deterministic packages",
	Run:  run,
}

// scopePkgs are the packages deterministic in full.
var scopePkgs = map[string]bool{
	"nab/internal/core":      true,
	"nab/internal/coding":    true,
	"nab/internal/gf":        true,
	"nab/internal/linalg":    true,
	"nab/internal/adversary": true,
}

// scopeFiles scopes single files inside otherwise-nondeterministic
// packages: the chaos decision path lives in the transport package but
// must derive every decision from the seed.
var scopeFiles = map[string]string{
	"nab/internal/transport": "chaos.go",
}

// timeFuncs are the wall-clock reads; none have a place in code whose
// outputs replay byte-identically.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// osFuncs are process-identity and environment queries.
var osFuncs = map[string]bool{
	"Getpid": true, "Getenv": true, "Environ": true, "Hostname": true, "LookupEnv": true,
}

// runtimeFuncs leak scheduler and host shape.
var runtimeFuncs = map[string]bool{
	"NumCPU": true, "NumGoroutine": true,
}

// randOK are the math/rand package-level constructors for seeded
// streams; every other package-level function draws from the shared
// global source.
var randOK = map[string]bool{
	"New": true, "NewSource": true,
}

func run(pass *analysis.Pass) error {
	wholePkg := scopePkgs[pass.Pkg.Path()]
	onlyFile := scopeFiles[pass.Pkg.Path()]
	if !wholePkg && onlyFile == "" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		if !wholePkg && pass.Filename(f.Pos()) != onlyFile {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCalls(pass, fd)
			checkMapRanges(pass, fd)
		}
	}
	return nil
}

func checkCalls(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			return true // methods (e.g. (*rand.Rand).Intn) are seeded-stream territory
		}
		switch path, name := fn.Pkg().Path(), fn.Name(); {
		case path == "time" && timeFuncs[name]:
			pass.Reportf(call.Pos(), "time.%s in deterministic code (outputs must be a pure function of the seeded inputs)", name)
		case path == "math/rand" && !randOK[name]:
			pass.Reportf(call.Pos(), "math/rand.%s draws from the shared global stream; use a seeded *rand.Rand", name)
		case path == "math/rand/v2":
			pass.Reportf(call.Pos(), "math/rand/v2.%s is seeded per-process; use a seeded *rand.Rand", name)
		case path == "crypto/rand":
			pass.Reportf(call.Pos(), "crypto/rand.%s is nondeterministic by design; use a seeded *rand.Rand", name)
		case path == "os" && osFuncs[name]:
			pass.Reportf(call.Pos(), "os.%s in deterministic code (process identity must not reach protocol decisions)", name)
		case path == "runtime" && runtimeFuncs[name]:
			pass.Reportf(call.Pos(), "runtime.%s in deterministic code (host shape must not reach protocol decisions)", name)
		}
		return true
	})
}

// checkMapRanges flags map-range loops whose iteration order escapes:
// channel sends from the body, or appends to outer slices that the
// function never sorts afterwards.
func checkMapRanges(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SendStmt:
				pass.Reportf(m.Pos(), "channel send inside map iteration (receiver observes nondeterministic order)")
			case *ast.AssignStmt:
				target, appended := appendTarget(pass.TypesInfo, m)
				if !appended || target == nil {
					return true
				}
				if declaredWithin(pass.TypesInfo, target, rs) {
					return true
				}
				name := types.ExprString(target)
				if !sortedAfter(pass, fd, rs, name) {
					pass.Reportf(m.Pos(), "append to %s inside map iteration without a later sort (emitted order is nondeterministic)", name)
				}
			}
			return true
		})
		return true
	})
}

// appendTarget matches `x = append(x, ...)` and returns x.
func appendTarget(info *types.Info, as *ast.AssignStmt) (ast.Expr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	if obj, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || obj.Name() != "append" {
		return nil, false
	}
	return as.Lhs[0], true
}

// declaredWithin reports whether the root object of e is declared inside
// loop — appends to loop-local slices cannot leak order out by
// themselves.
func declaredWithin(info *types.Info, e ast.Expr, loop *ast.RangeStmt) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && obj.Pos() >= loop.Pos() && obj.Pos() < loop.End()
}

// sortedAfter reports whether target (by expression identity) is passed
// to a sort.*/slices.* call after the loop in the same function.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, loop *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < loop.End() {
			return true
		}
		fn := staticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target || strings.HasPrefix(types.ExprString(arg), target+"[") {
				found = true
			}
		}
		return true
	})
	return found
}

func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
