// Package core impersonates the repo's nab/internal/core import path so
// the determinism analyzer's package scoping applies to these fixtures.
package core

import (
	"math/rand"
	"sort"
	"time"
)

type emitter struct {
	out []int
}

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic code`
}

func backoff() {
	<-time.After(time.Millisecond) // want `time\.After in deterministic code`
}

func draw() int {
	return rand.Intn(6) // want `math/rand\.Intn draws from the shared global stream`
}

// drawSeeded is the sanctioned form: an explicit seeded stream.
func drawSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

func collectUnsorted(m map[int]int, e *emitter) {
	for k := range m {
		e.out = append(e.out, k) // want `append to e\.out inside map iteration without a later sort`
	}
}

// collectSorted is the repo's range-then-sort idiom: iteration order is
// laundered through the sort before anything observes it.
func collectSorted(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// collectLocal appends to a slice born inside the loop body; its order
// cannot escape the iteration.
func collectLocal(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		local := []int{}
		for _, v := range vs {
			local = append(local, v)
		}
		n += len(local)
	}
	return n
}

func fanOut(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside map iteration`
	}
}

// anchored shows a justified suppression: construction-time wall-clock
// anchoring with seeded decisions, the chaos-epoch idiom.
func anchored() time.Time {
	//nab:ignore determinism -- fixture: construction-time anchor; no decision consumes it
	return time.Now()
}
