package pacer

import (
	"net"
	"os"
	"sync"
)

type box struct {
	mu   sync.RWMutex
	cond *sync.Cond
	ch   chan int
	f    *os.File
	c    net.Conn
}

func (b *box) sendLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1 // want `channel send while b\.mu is held`
}

func (b *box) kick() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // non-blocking: the default case never waits
	case b.ch <- 1:
	default:
	}
}

func (b *box) recvLocked() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return <-b.ch // want `channel receive while b\.mu is held`
}

func (b *box) fsyncLocked() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.Sync() // want `\(\*os\.File\)\.Sync while b\.mu is held`
}

// groupCommit is the WAL idiom: unlock around the fsync, relock after.
func (b *box) groupCommit() error {
	b.mu.Lock()
	f := b.f
	b.mu.Unlock()
	err := f.Sync()
	b.mu.Lock()
	defer b.mu.Unlock()
	return err
}

func (b *box) helper() {
	<-b.ch
}

func (b *box) viaHelper() {
	b.mu.RLock()
	b.helper() // want `call to helper, which can block \(channel receive\)`
	b.mu.RUnlock()
}

func (b *box) netWrite(p []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.c.Write(p) // want `net\.Conn write while b\.mu is held`
}

// await is the mailbox idiom: Cond.Wait releases the mutex it rides on.
func (b *box) await() {
	b.mu.Lock()
	for len(b.ch) == 0 {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// spawn starts the blocking work on its own goroutine; the caller never
// waits with the lock held.
func (b *box) spawn() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go b.helper()
}

// justified shows an accepted suppression: the directive names the
// analyzer and carries a reason, so the finding is silenced.
func (b *box) justified() {
	b.mu.Lock()
	defer b.mu.Unlock()
	//nab:ignore lockedblock -- fixture: this mutex only serializes the send itself
	b.ch <- 1
}
