// Package pacer reproduces the PR 7 pacer-stall bug class: the token
// bucket charged its pacing debt by sleeping with p.mu held, so every
// concurrent sender on the link (and the metrics scraper walking the
// same mutex) queued behind the nap. chargeStalled is that original
// shape and must be flagged; charge is the shipped fix and must not.
package pacer

import (
	"sync"
	"time"
)

type pacer struct {
	mu   sync.Mutex
	debt time.Duration
}

// chargeStalled is the pre-fix shape: compute the debt and nap without
// releasing the lock.
func (p *pacer) chargeStalled(d time.Duration) {
	p.mu.Lock()
	p.debt += d
	wait := p.debt
	time.Sleep(wait) // want `time\.Sleep while p\.mu is held`
	p.debt = 0
	p.mu.Unlock()
}

// charge is the fixed shape: the debt is computed and cleared under the
// lock, the nap happens outside it.
func (p *pacer) charge(d time.Duration) {
	p.mu.Lock()
	p.debt += d
	wait := p.debt
	p.debt = 0
	p.mu.Unlock()
	time.Sleep(wait)
}
