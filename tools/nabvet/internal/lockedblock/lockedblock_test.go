package lockedblock_test

import (
	"testing"

	"nab/tools/nabvet/internal/analysis"
	"nab/tools/nabvet/internal/analysistest"
	"nab/tools/nabvet/internal/lockedblock"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{lockedblock.Analyzer})
}
