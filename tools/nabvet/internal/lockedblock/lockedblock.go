// Package lockedblock flags blocking operations reachable while a
// sync.Mutex or sync.RWMutex is held — the bug class behind PR 7's
// pacer stall, where a token-bucket charge slept its pacing delay with
// p.mu held and every concurrent sender (and the metrics scraper)
// queued behind the nap.
//
// Blocking operations are the unbounded waits: time.Sleep, channel
// sends/receives outside a select with a default case, selects without
// a default, (*os.File).Sync, (*sync.WaitGroup).Wait, and Read/Write
// calls on values implementing net.Conn. (*sync.Cond).Wait is exempt —
// it releases the mutex it rides on. Calls to same-package functions
// that (transitively) contain a blocking operation are flagged too, so
// hiding the sleep one helper deeper does not silence the check.
//
// The analysis is linear in source order and path-insensitive: a lock
// is considered held from x.Lock() until x.Unlock() in statement order
// (a deferred Unlock holds to the end of the function), which matches
// the repo's locking idioms — including the group-commit pattern that
// explicitly unlocks around an fsync and relocks after.
package lockedblock

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"nab/tools/nabvet/internal/analysis"
)

// Analyzer is the lockedblock check.
var Analyzer = &analysis.Analyzer{
	Name: "lockedblock",
	Doc:  "report blocking calls (time.Sleep, channel ops, net.Conn I/O, fsync) made while a sync.Mutex/RWMutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
	}
	c.netConn = lookupNetConn(pass.Pkg)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[obj] = fd
				}
			}
		}
	}
	c.computeBlocky()
	for _, fd := range c.decls {
		w := &walker{c: c, held: map[string]token.Pos{}}
		w.stmts(fd.Body.List)
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	blocky  map[*types.Func]string // function -> what blocks inside it
	netConn *types.Interface
}

// lookupNetConn finds the net.Conn interface through the package's
// imports; a package that never imports net cannot name a net.Conn.
func lookupNetConn(pkg *types.Package) *types.Interface {
	for _, imp := range allImports(pkg, map[*types.Package]bool{}) {
		if imp.Path() == "net" {
			if obj, ok := imp.Scope().Lookup("Conn").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
		}
	}
	return nil
}

func allImports(pkg *types.Package, seen map[*types.Package]bool) []*types.Package {
	var out []*types.Package
	for _, imp := range pkg.Imports() {
		if seen[imp] {
			continue
		}
		seen[imp] = true
		out = append(out, imp)
		out = append(out, allImports(imp, seen)...)
	}
	return out
}

// computeBlocky finds every package function containing a direct
// blocking operation, then closes over same-package calls so callers of
// blocking helpers inherit the reason.
func (c *checker) computeBlocky() {
	c.blocky = map[*types.Func]string{}
	edges := map[*types.Func][]*types.Func{}
	for obj, fd := range c.decls {
		if desc := c.directBlocking(fd); desc != "" {
			c.blocky[obj] = desc
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				// A function literal runs when invoked and a go statement's
				// call runs on its own goroutine; neither blocks the caller.
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := c.callee(call); callee != nil && callee.Pkg() == c.pass.Pkg {
				if _, local := c.decls[callee]; local {
					edges[callee] = append(edges[callee], obj)
				}
			}
			return true
		})
	}
	// Fixpoint: propagate blockiness caller-ward, recording the chain.
	queue := make([]*types.Func, 0, len(c.blocky))
	for fn := range c.blocky {
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range edges[fn] {
			if _, done := c.blocky[caller]; done {
				continue
			}
			c.blocky[caller] = fmt.Sprintf("%s via %s", rootReason(c.blocky[fn]), fn.Name())
			queue = append(queue, caller)
		}
	}
}

// rootReason strips an existing "via" chain so deep call stacks report
// the original operation and the nearest hop, not the whole path.
func rootReason(desc string) string {
	for i := 0; i+5 <= len(desc); i++ {
		if desc[i:i+5] == " via " {
			return desc[:i]
		}
	}
	return desc
}

// directBlocking returns a description of the first blocking operation
// in fd's body (function literals excluded — they run on their own
// goroutines or as callbacks), or "".
func (c *checker) directBlocking(fd *ast.FuncDecl) string {
	var desc string
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				desc = "blocking select"
				return false
			}
			// Non-blocking select: its comm clauses never wait, but the
			// chosen body runs normally.
			for _, cl := range n.Body.List {
				for _, s := range cl.(*ast.CommClause).Body {
					ast.Inspect(s, walk)
				}
			}
			return false
		case *ast.SendStmt:
			desc = "channel send"
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				desc = "channel receive"
				return false
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					desc = "range over channel"
				}
			}
		case *ast.CallExpr:
			if d := c.blockingCall(n); d != "" {
				desc = d
				return false
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return desc
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cl.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall classifies one call as a known blocking stdlib operation.
func (c *checker) blockingCall(call *ast.CallExpr) string {
	// Read/Write on a net.Conn: wire I/O with no deadline is an unbounded
	// wait. Checked before callee resolution because net.Conn is an
	// interface — these calls have no static *types.Func.
	if c.netConn != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Read" || sel.Sel.Name == "Write") {
			if t := c.pass.TypesInfo.TypeOf(sel.X); t != nil && types.Implements(t, c.netConn) {
				return "net.Conn " + lower(sel.Sel.Name)
			}
		}
	}
	fn := c.callee(call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	switch {
	case fn.Pkg().Path() == "time" && recv == nil && fn.Name() == "Sleep":
		return "time.Sleep"
	case recv != nil && fn.Pkg().Path() == "os" && fn.Name() == "Sync" && namedIs(recv.Type(), "os", "File"):
		return "(*os.File).Sync"
	case recv != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" && namedIs(recv.Type(), "sync", "WaitGroup"):
		return "(*sync.WaitGroup).Wait"
	}
	return ""
}

func lower(s string) string {
	if s == "Read" {
		return "read"
	}
	return "write"
}

func namedIs(t types.Type, pkg, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkg && n.Obj().Name() == name
}

// callee resolves a call to its static *types.Func (method or
// function), or nil for calls through function values and interfaces.
func (c *checker) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface method calls have no body to inspect; only
				// concrete receivers are classified (stdlib ones by
				// identity above, package-local ones via c.decls).
				if isInterfaceRecv(sel) {
					return classifyOnly(fn)
				}
				return fn
			}
			return nil
		}
		fn, _ := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// classifyOnly returns fn when it is one of the stdlib operations the
// blocking classifier matches by identity even through an interface —
// there are none today, so interface calls resolve to nil.
func classifyOnly(*types.Func) *types.Func { return nil }

func isInterfaceRecv(sel *types.Selection) bool {
	recv := sel.Recv()
	if recv == nil {
		return false
	}
	_, ok := recv.Underlying().(*types.Interface)
	return ok
}

// walker tracks held locks through one function body in source order.
type walker struct {
	c    *checker
	held map[string]token.Pos // lock root expr -> Lock() position
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		if len(w.held) > 0 {
			w.report(s.Arrow, "channel send")
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end; a
		// deferred blocking call runs after the body, outside our
		// linear model — skip both, but recognize deferred closures'
		// immediate lock mutations? No: defers run at return.
	case *ast.GoStmt:
		// The goroutine body runs elsewhere; its blocking is its own.
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmts(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.expr(s.X)
		if len(w.held) > 0 {
			if t := w.c.pass.TypesInfo.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.report(s.Range, "range over channel")
				}
			}
		}
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, cl := range s.Body.List {
			w.stmts(cl.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		for _, cl := range s.Body.List {
			w.stmts(cl.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		if len(w.held) > 0 && !selectHasDefault(s) {
			w.report(s.Select, "blocking select")
		}
		for _, cl := range s.Body.List {
			w.stmts(cl.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// expr scans one expression for lock transitions and blocking
// operations, left to right.
func (w *walker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(w.held) > 0 {
				w.report(n.OpPos, "channel receive")
			}
		case *ast.CallExpr:
			if root, op, ok := w.lockOp(n); ok {
				switch op {
				case "Lock", "RLock":
					w.held[root] = n.Pos()
				case "Unlock", "RUnlock":
					delete(w.held, root)
				}
				return false
			}
			if len(w.held) == 0 {
				return true
			}
			if desc := w.c.blockingCall(n); desc != "" {
				w.report(n.Pos(), desc)
				return true
			}
			if fn := w.c.callee(n); fn != nil {
				if reason, ok := w.c.blocky[fn]; ok {
					// sync.Cond.Wait releases the mutex; calling it
					// under the lock is the whole point.
					w.report(n.Pos(), fmt.Sprintf("call to %s, which can block (%s)", fn.Name(), reason))
				}
			}
		}
		return true
	})
}

// lockOp recognizes x.Lock/RLock/Unlock/RUnlock on sync.Mutex/RWMutex
// (including promoted methods of embedded mutexes) and returns the lock
// root expression.
func (w *walker) lockOp(call *ast.CallExpr) (root, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	selection, found := w.c.pass.TypesInfo.Selections[sel]
	if !found {
		return "", "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !(namedIs(recv.Type(), "sync", "Mutex") || namedIs(recv.Type(), "sync", "RWMutex")) {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}

func (w *walker) report(pos token.Pos, what string) {
	// Name one held lock deterministically (the earliest acquired).
	var root string
	var at token.Pos
	for r, p := range w.held {
		if root == "" || p < at {
			root, at = r, p
		}
	}
	w.c.pass.Reportf(pos, "%s while %s is held (locked at %s)", what, root, w.c.pass.Fset.Position(at))
}
