// Package analysistest runs a nabvet analyzer over a testdata source
// tree and checks its diagnostics against expectations embedded in the
// fixtures, in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	time.Sleep(time.Millisecond) // want `time\.Sleep .* while .* is held`
//
// Every line carrying a `// want` comment must produce diagnostics
// matching each backquoted regexp exactly once, and every diagnostic
// must be wanted. Fixtures therefore pin both halves of an analyzer's
// contract: the seeded violation is reported, and the legitimate idiom
// beside it is not.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"nab/tools/nabvet/internal/analysis"
	"nab/tools/nabvet/internal/load"
)

// wantRe extracts the backquoted patterns of one want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the testdata tree rooted at dir (dir/src/<importpath>/*.go)
// and applies analyzers to every package whose import path is in
// targets (all packages in the tree when targets is empty), diffing
// diagnostics against the tree's want comments.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, targets ...string) {
	t.Helper()
	pkgs, err := load.Testdata(dir)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	want := map[string]bool{}
	for _, tg := range targets {
		want[tg] = true
	}
	ran := 0
	for _, pkg := range pkgs {
		if len(targets) > 0 && !want[pkg.Path] {
			continue
		}
		ran++
		expected := collectWants(t, pkg.Unit.Fset, pkg.Unit.Files)
		diags, err := analysis.Run(pkg.Unit, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			if !claim(expected, d) {
				t.Errorf("%s: unexpected diagnostic: %s", pkg.Path, d)
			}
		}
		for _, e := range expected {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.pattern)
			}
		}
	}
	if ran == 0 {
		t.Fatalf("no testdata packages matched %v", targets)
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// that its message satisfies.
func claim(expected []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expected {
		if e.matched || e.line != d.Pos.Line || e.file != d.Pos.Filename {
			continue
		}
		if e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(text[i:], -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment with no backquoted pattern: %s", pos, text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}
