// Command nabvet is the repo's static-analysis multichecker: five
// project-specific analyzers over the nab module's invariants —
//
//	lockedblock   blocking calls while a sync.Mutex/RWMutex is held
//	determinism   nondeterminism inside oracle-deterministic packages
//	allocfree     allocations in //nab:allocfree-annotated functions
//	metricnames   nab_* naming conventions at metric registration sites
//	wirebounds    unguarded slice access in wire and WAL decoders
//
// It runs in two modes. Standalone, it loads packages itself:
//
//	nabvet ./...
//	nabvet -lockedblock=false nab/internal/wal
//
// And as a vet tool, the go command drives it one package at a time
// with full export data for dependencies:
//
//	go vet -vettool=$(which nabvet) ./...
//
// Findings are suppressed only by an annotated justification; see
// package nab/tools/nabvet/internal/analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"nab/tools/nabvet/internal/analysis"
	"nab/tools/nabvet/internal/load"

	"nab/tools/nabvet/internal/allocfree"
	"nab/tools/nabvet/internal/determinism"
	"nab/tools/nabvet/internal/lockedblock"
	"nab/tools/nabvet/internal/metricnames"
	"nab/tools/nabvet/internal/wirebounds"
)

// version is what `nabvet -V=full` reports; the go command hashes this
// line into its vet cache key, so bump it when analyzer behavior
// changes to invalidate stale "package is clean" verdicts.
const version = "nabvet version v1"

// All is the full analyzer suite, in reporting order.
var All = []*analysis.Analyzer{
	lockedblock.Analyzer,
	determinism.Analyzer,
	allocfree.Analyzer,
	metricnames.Analyzer,
	wirebounds.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("nabvet", flag.ExitOnError)
	fs.Usage = usage(fs)
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (vettool protocol)")
	vFlag := fs.String("V", "", "print version and exit (vettool protocol: -V=full)")
	enabled := map[string]*bool{}
	for _, a := range All {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Protocol handshakes, in the order cmd/go performs them.
	if *vFlag != "" {
		fmt.Println(version)
		return 0
	}
	if *printFlags {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range All {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analyzer"})
		}
		data, err := json.Marshal(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(string(data))
		return 0
	}

	var active []*analysis.Analyzer
	for _, a := range All {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], active)
	}
	return standalone(rest, active)
}

func usage(fs *flag.FlagSet) func() {
	return func() {
		fmt.Fprintf(fs.Output(), "usage: nabvet [flags] [packages]\n       go vet -vettool=$(which nabvet) [packages]\n\nAnalyzers:\n")
		for _, a := range All {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
}

// standalone loads patterns (default ./...) from the current directory
// and prints findings to stderr, exiting nonzero if there are any.
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nabvet:", err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg.Unit, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nabvet:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			found++
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}

// vetConfig is the per-package JSON file the go command hands a vet
// tool (see cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgFile. Findings
// go to stderr with a nonzero exit, matching the convention the go
// command expects from vet tools.
func unitcheck(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nabvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nabvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The go command requires the vetx output to exist for caching, and
	// runs the tool over dependencies (VetxOnly) purely to produce it.
	// nabvet keeps no cross-package facts, so the file is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "nabvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	var files []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	fset := token.NewFileSet()
	imp := load.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	unit, err := load.Check(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "nabvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := analysis.Run(unit, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nabvet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
