package main

import (
	"testing"

	"nab/tools/nabvet/internal/analysis"
	"nab/tools/nabvet/internal/load"
)

// TestRepoClean runs the full analyzer suite over every package of the
// module — the same sweep CI performs with `go vet -vettool` — and
// fails on any finding. A legitimate new idiom the analyzers misread
// gets a //nab:ignore with a reason, not an exclusion here.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide sweep type-checks every package")
	}
	pkgs, err := load.Packages(".", "nab/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module sweep should cover all of nab/...", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg.Unit, All)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestVersionLine pins the -V=full handshake format the go command
// parses: "<name> version <anything>".
func TestVersionLine(t *testing.T) {
	if got, want := version, "nabvet version v1"; got != want {
		t.Fatalf("version line %q, want %q", got, want)
	}
}
