package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestGenerateDeterministic pins the generator: the same fuzz seed must
// expand to the same scenario forever, or recorded seed numbers stop
// meaning anything.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := Generate(seed), Generate(seed)
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("seed %d generated two different scenarios:\n%s\n%s", seed, ja, jb)
		}
		if err := a.Chaos.Validate(); err != nil {
			t.Errorf("seed %d generated invalid chaos config: %v", seed, err)
		}
		if a.Engine == "kill-recover" && (a.KillAfter < 1 || a.KillAfter >= a.Q) {
			t.Errorf("seed %d: kill point %d outside (0, %d)", seed, a.KillAfter, a.Q)
		}
	}
	if reflect.DeepEqual(Generate(1), Generate(2)) {
		t.Fatal("adjacent seeds generated identical scenarios")
	}
}

// TestScenarioFixtureRoundTrip checks a recorded scenario survives the
// JSON round trip intact — a failing seed must replay exactly.
func TestScenarioFixtureRoundTrip(t *testing.T) {
	sc := Generate(42)
	dir := t.TempDir()
	path, err := sc.record(dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := loadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	back.Name = "" // record derives the name from the label; ignore it
	ja, _ := json.Marshal(sc)
	jb, _ := json.Marshal(back)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("fixture round trip mangled the scenario:\n%s\n%s", ja, jb)
	}
}

// TestChaosFuzzSmoke sweeps a small fixed seed budget end to end: every
// generated scenario must commit byte-identically to the lockstep oracle.
// CI runs a larger budget under -race (see the fuzz workflow).
func TestChaosFuzzSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine sweep skipped in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-seeds", "4"}, &out, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
}

// TestReplayCheckedInFixtures replays every committed regression fixture:
// scenarios that once flushed out a transport bug must stay green.
func TestReplayCheckedInFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine replays skipped in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-fixtures", "fixtures"}, &out, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	t.Logf("\n%s", out.String())
}
