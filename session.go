package nab

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"nab/internal/cluster"
	"nab/internal/core"
	"nab/internal/dispute"
	"nab/internal/runtime"
	"nab/internal/wal"
)

// Seq is the broadcast sequence number a Session assigns at submission:
// the NAB instance number (1-based) the payload will commit as. Commits
// are delivered strictly in Seq order.
type Seq int

// Commit is one committed broadcast instance, delivered on
// Session.Commits in submission order.
type Commit struct {
	// Seq echoes the sequence number Submit returned for this payload.
	Seq Seq
	// Result is the full instance report: per-node outputs (local nodes
	// only under WithLocalNodes or WithCluster), the mismatch/phase3
	// schedule and dispute-control findings.
	Result *InstanceResult
	// Replayed marks a commit re-delivered from the write-ahead log by a
	// Recover session: it was committed (and delivered) by a previous
	// incarnation of the process.
	Replayed bool
}

// ErrSessionDraining is returned by Submit while the session drains:
// Drain closed the submission stream but accepted payloads are still
// committing.
var ErrSessionDraining = errors.New("nab: session draining: submit after drain")

// ErrSessionClosed is returned by Submit once the session has ended —
// after Close, after a completed Drain, or once the engine failed.
var ErrSessionClosed = errors.New("nab: session closed")

// DisputeSet is the accumulated dispute relation (pairs and proven-faulty
// nodes) an engine carries across instances.
type DisputeSet = dispute.Set

// sessionOptions collects the functional options of Open.
type sessionOptions struct {
	lockstep     bool
	window       int
	transport    Transport
	chanOpts     TransportOptions
	localNodes   []NodeID
	adversaries  map[NodeID]Adversary
	commitBuffer int

	cluster     *ClusterConfig
	clusterID   NodeID
	clusterOpts ClusterOptions

	durability *durabilityOptions

	// Flight-recorder arming (see WithFlightRecorder / flight.go).
	flightCapacity  int
	flightPredicate func(FlightEvent) bool
}

// SessionOption customizes Open.
type SessionOption func(*sessionOptions)

// WithLockstep runs the session on the lockstep synchronous simulator
// (core.Runner) — one instance at a time, the paper's reference model and
// the oracle the concurrent engines are verified against.
func WithLockstep() SessionOption {
	return func(o *sessionOptions) { o.lockstep = true }
}

// WithWindow sets the pipelined engine's in-flight window W (default 4).
// W=1 degenerates to sequential execution on the concurrent engine.
func WithWindow(w int) SessionOption {
	return func(o *sessionOptions) { o.window = w }
}

// WithTransport runs the pipelined engine's node links over tr (e.g.
// NewTCPTransport) instead of the default in-process bus. The session
// takes ownership and closes it.
func WithTransport(tr Transport) SessionOption {
	return func(o *sessionOptions) { o.transport = tr }
}

// WithTransportOptions tunes the default in-process bus (token-bucket
// pacing, inbox depth) when no WithTransport is given.
func WithTransportOptions(opt TransportOptions) SessionOption {
	return func(o *sessionOptions) { o.chanOpts = opt }
}

// WithLocalNodes restricts the pipelined engine to hosting the given
// nodes' actors — the multi-process deployment where the transport
// carries the rest of the topology's traffic (see PipelineConfig's
// LocalNodes; prefer WithCluster, which also wires the control plane).
func WithLocalNodes(nodes ...NodeID) SessionOption {
	return func(o *sessionOptions) { o.localNodes = append(o.localNodes, nodes...) }
}

// WithAdversary scripts node v's Byzantine behaviour, merging over the
// Config's Adversaries map. Prefer SeededRandomAdversary for randomized
// strategies — it stays deterministic under any window.
func WithAdversary(v NodeID, a Adversary) SessionOption {
	return func(o *sessionOptions) {
		if o.adversaries == nil {
			o.adversaries = map[NodeID]Adversary{}
		}
		o.adversaries[v] = a
	}
}

// WithCommitBuffer sets the capacity of the Commits channel (default 16).
// A consumer that falls more than this many commits behind exerts
// backpressure: the pipeline stalls, and once the submission queue fills,
// Submit blocks — end-to-end flow control from consumer to producer.
func WithCommitBuffer(n int) SessionOption {
	return func(o *sessionOptions) { o.commitBuffer = n }
}

// WithCluster joins a multi-process cluster as the host of node id and
// runs the session on the partial engine driving this process's nodes
// (full-mesh TCP links, coordinator control plane). The engine
// configuration — topology, window, scripted adversaries — comes from the
// shared cluster config, so the Config passed to Open must be zero.
// Every process of the cluster must feed its session identical payload
// sequences.
func WithCluster(cfg *ClusterConfig, id NodeID, opt ClusterOptions) SessionOption {
	return func(o *sessionOptions) {
		o.cluster = cfg
		o.clusterID = id
		o.clusterOpts = opt
	}
}

// Session is the unified streaming interface over every NAB execution
// engine: clients Submit payloads continuously and consume Commits as
// they land, with the engine keeping its pipeline full in between — the
// session-oriented shape of a long-lived coded-broadcast service, in
// contrast to the one-shot batch calls it replaces (Runner.Run,
// PipelinedRunner.Run, ClusterNode.Run).
//
//	sess, err := nab.Open(ctx, cfg, nab.WithWindow(4))
//	...
//	go func() {
//		for _, p := range payloads {
//			if _, err := sess.Submit(ctx, p); err != nil { ... }
//		}
//		sess.Drain(ctx)
//	}()
//	for c := range sess.Commits() {
//		// c.Result.Outputs — committed in Seq order
//	}
//	err = sess.Err()
//
// All engines commit byte-identical outputs for identical payload
// sequences; the differential session tests assert it continuously.
type Session struct {
	lenBytes int
	node     *ClusterNode // non-nil for WithCluster sessions
	closer   func() error
	disputes func() *DisputeSet
	cancel   context.CancelFunc

	// flightDisarm clears what armFlight installed on the process-global
	// flight recorder (predicate, autodump dir); nil when nothing was.
	flightDisarm func()

	// Durability state (nil without WithDurability/Recover).
	slog         *sessionLog
	replayed     []*core.InstanceResult // recovered commits re-delivered at open
	recoveredSeq Seq                    // highest sequence restored from the WAL

	// submitMu serializes producers and guards the submission stream's
	// lifecycle, so Drain never closes subs under a blocked send.
	submitMu sync.Mutex
	subs     chan []byte
	next     Seq
	drained  bool

	// subTimes records each accepted payload's submit time until its
	// commit observes the end-to-end latency; guarded by its own mutex
	// because the commit side runs in the engine goroutine.
	subTimeMu sync.Mutex
	subTimes  map[Seq]time.Time

	commits chan Commit
	done    chan struct{}
	err     error           // terminal error; written before done closes
	res     *PipelineResult // aggregate accounting; written before done closes

	closeOnce sync.Once
	closeErr  error
}

// Open validates cfg, starts the selected engine and returns a live
// Session. The default engine is the concurrent pipelined runtime;
// WithLockstep selects the synchronous simulator and WithCluster the
// multi-process partial engine. Canceling ctx aborts the session: every
// in-flight instance execution is torn down (mid-dispute included),
// Commits closes, and Err reports the cancellation.
//
// Close the session when done — it owns the engine and its transport.
func Open(ctx context.Context, cfg Config, opts ...SessionOption) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := sessionOptions{commitBuffer: 16}
	for _, opt := range opts {
		opt(&o)
	}
	if o.commitBuffer < 1 {
		return nil, fmt.Errorf("nab: commit buffer %d must be >= 1", o.commitBuffer)
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Session{
		cancel:       cancel,
		commits:      make(chan Commit, o.commitBuffer),
		done:         make(chan struct{}),
		subTimes:     map[Seq]time.Time{},
		flightDisarm: armFlight(&o),
	}
	fail := func(err error) (*Session, error) {
		cancel()
		if s.slog != nil {
			s.slog.close()
		}
		if s.flightDisarm != nil {
			s.flightDisarm()
		}
		return nil, err
	}

	// Durability: open (or resume) the WAL before the engine, so every
	// engine starts from the recovered state.
	rec := &recovery{}
	if o.durability != nil {
		if o.durability.dir == "" {
			return fail(errors.New("nab: WithSnapshotInterval needs WithDurability or Recover to name the log directory"))
		}
		var fp uint64
		node := int64(-1)
		if o.cluster != nil {
			fp = wal.Fingerprint(o.cluster.Topology, o.cluster.Source, o.cluster.F,
				o.cluster.LenBytes, o.cluster.Seed, clusterAdversaryString(o.cluster))
			node = int64(o.clusterID)
			g, err := o.cluster.Graph()
			if err != nil {
				return fail(err)
			}
			s.slog, rec, err = openSessionLog(o.durability, fp, node, g, true)
			if err != nil {
				return fail(err)
			}
		} else {
			if cfg.Graph == nil {
				return fail(errors.New("nab: durability needs a configured topology"))
			}
			merged := cfg
			mergeAdversaries(&merged, o.adversaries)
			fp = wal.Fingerprint(cfg.Graph.Marshal(), cfg.Source, cfg.F,
				cfg.LenBytes, cfg.Seed, adversaryString(merged.Adversaries))
			var err error
			s.slog, rec, err = openSessionLog(o.durability, fp, node, cfg.Graph, false)
			if err != nil {
				return fail(err)
			}
		}
		s.replayed = rec.replayed
		s.recoveredSeq = Seq(rec.tail)
		s.next = Seq(rec.tail)
	}

	switch {
	case o.cluster != nil:
		if o.lockstep || o.transport != nil || o.localNodes != nil || o.adversaries != nil || o.window != 0 {
			return fail(errors.New("nab: WithCluster derives engine, window, transport and adversaries from the cluster config; drop the conflicting options"))
		}
		if cfg.Graph != nil {
			return fail(errors.New("nab: WithCluster derives the configuration from the cluster config; pass a zero Config"))
		}
		copt := o.clusterOpts
		if copt.Join && s.slog == nil {
			return fail(errors.New("nab: ClusterOptions.Join needs WithDurability: the transferred state must be persisted"))
		}
		if s.slog != nil {
			copt.Durable = true
			// The cluster node's history starts above the snapshot floor:
			// foldList, not replayed (the surviving log tail may also carry
			// commits below a floor snapshot persisted after them).
			copt.Recovered = rec.foldList
			copt.RecoveredInputs = rec.inputs
			copt.Rejoining = rec.resumed
			copt.RecoveredBase = rec.base
			copt.RecoveredEpoch = rec.baseEpoch
			copt.RecoveredDigest = rec.baseDigest
			sl := s.slog
			copt.PersistFloor = sl.persistFloor
			copt.SyncWAL = sl.log.Sync
		}
		node, err := cluster.StartContext(sctx, o.cluster, o.clusterID, copt)
		if err != nil {
			return fail(err)
		}
		s.lenBytes = o.cluster.LenBytes
		s.node = node
		s.closer = node.Close
		s.disputes = node.Runtime().Disputes
		s.subs = make(chan []byte, max(1, o.cluster.Window))
		go func() {
			if !s.emitReplayed(sctx) {
				s.finish(nil, sctx.Err())
				return
			}
			// The node's result already spans the recovered prefix.
			res, err := node.Stream(sctx, s.subs, s.emitFunc(sctx))
			s.finish(res, err)
		}()

	case o.lockstep:
		if o.transport != nil || o.localNodes != nil {
			return fail(errors.New("nab: the lockstep engine runs on the synchronous simulator; WithTransport/WithLocalNodes need the pipelined engine"))
		}
		if o.window > 1 {
			return fail(fmt.Errorf("nab: the lockstep engine is sequential; window %d needs the pipelined engine", o.window))
		}
		mergeAdversaries(&cfg, o.adversaries)
		runner, err := core.NewRunner(cfg)
		if err != nil {
			return fail(err)
		}
		if s.slog != nil {
			if rec.base != nil {
				err = runner.RestoreSnapshot(*rec.base, rec.foldList)
			} else {
				err = runner.Restore(rec.k, rec.foldList)
			}
			if err != nil {
				return fail(err)
			}
		}
		s.lenBytes = cfg.LenBytes
		s.disputes = runner.Disputes
		if _, err := s.preloadSubs(rec, 1); err != nil {
			return fail(err)
		}
		go s.runLockstep(sctx, runner)

	default:
		mergeAdversaries(&cfg, o.adversaries)
		rt, err := runtime.New(runtime.Config{
			Config:      cfg,
			Window:      o.window,
			Transport:   o.transport,
			ChanOptions: o.chanOpts,
			LocalNodes:  o.localNodes,
		})
		if err != nil {
			return fail(err)
		}
		s.closer = rt.Close
		if s.slog != nil {
			if rec.base != nil {
				err = rt.RestoreSnapshot(0, *rec.base, rec.foldList)
			} else {
				err = rt.Restore(0, rec.k, rec.foldList)
			}
			if err != nil {
				return fail(err)
			}
		}
		s.lenBytes = cfg.LenBytes
		s.disputes = rt.Disputes
		if _, err := s.preloadSubs(rec, rt.Window()); err != nil {
			return fail(err)
		}
		go func() {
			if !s.emitReplayed(sctx) {
				s.finish(nil, sctx.Err())
				return
			}
			res, err := rt.RunStream(sctx, s.subs, s.emitFunc(sctx))
			if res != nil && len(s.replayed) > 0 {
				res.Instances = append(append([]*core.InstanceResult(nil), s.replayed...), res.Instances...)
			}
			s.finish(res, err)
		}()
	}
	return s, nil
}

// preloadSubs sizes the submission channel to hold the recovered
// uncommitted backlog plus the engine's window and enqueues the backlog,
// so recovered payloads re-enter the stream ahead of any new Submit.
func (s *Session) preloadSubs(rec *recovery, window int) (int, error) {
	backlog, err := rec.uncommitted()
	if err != nil {
		return 0, err
	}
	s.subs = make(chan []byte, len(backlog)+max(1, window))
	for _, in := range backlog {
		s.subs <- in
	}
	return len(backlog), nil
}

// emitReplayed re-delivers the recovered commits on the Commits channel
// before any live traffic; false means the session context ended first.
func (s *Session) emitReplayed(ctx context.Context) bool {
	for _, ir := range s.replayed {
		select {
		case s.commits <- Commit{Seq: Seq(ir.K), Result: ir, Replayed: true}:
			mCommitsReplayed.Inc()
		case <-ctx.Done():
			return false
		}
	}
	return true
}

// adversaryString canonicalizes an in-process adversary assignment for
// the WAL fingerprint: sorted node=type pairs. Type identity is the best
// a map of interface values offers — two adversaries of one type with
// different internal parameters hash alike (cluster configs, which carry
// full spec strings, do better).
func adversaryString(advs map[NodeID]Adversary) string {
	if len(advs) == 0 {
		return ""
	}
	nodes := make([]NodeID, 0, len(advs))
	for v := range advs {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var sb strings.Builder
	for _, v := range nodes {
		fmt.Fprintf(&sb, "%d=%T;", v, advs[v])
	}
	return sb.String()
}

// clusterAdversaryString canonicalizes a cluster config's scripted
// adversaries (full spec strings, sorted by node).
func clusterAdversaryString(cfg *ClusterConfig) string {
	specs := make([]ClusterNodeSpec, len(cfg.Nodes))
	copy(specs, cfg.Nodes)
	sort.Slice(specs, func(i, j int) bool { return specs[i].ID < specs[j].ID })
	var sb strings.Builder
	for _, ns := range specs {
		if ns.Adversary != "" {
			fmt.Fprintf(&sb, "%d=%s;", ns.ID, ns.Adversary)
		}
	}
	return sb.String()
}

// mergeAdversaries overlays opts adversaries onto the config's map
// without mutating the caller's.
func mergeAdversaries(cfg *Config, extra map[NodeID]Adversary) {
	if len(extra) == 0 {
		return
	}
	merged := make(map[NodeID]Adversary, len(cfg.Adversaries)+len(extra))
	for v, a := range cfg.Adversaries {
		merged[v] = a
	}
	for v, a := range extra {
		merged[v] = a
	}
	cfg.Adversaries = merged
}

// emitFunc is the engine's per-commit hook: append to the write-ahead
// log (durable sessions), then push onto the Commits channel with
// backpressure, aborting if the session context ends first.
func (s *Session) emitFunc(ctx context.Context) func(*core.InstanceResult) error {
	return func(ir *core.InstanceResult) error {
		if s.slog != nil {
			if err := s.slog.logCommit(ir); err != nil {
				return fmt.Errorf("nab: wal commit: %w", err)
			}
		}
		select {
		case s.commits <- Commit{Seq: Seq(ir.K), Result: ir}:
			mCommits.Inc()
			s.subTimeMu.Lock()
			t, ok := s.subTimes[Seq(ir.K)]
			delete(s.subTimes, Seq(ir.K))
			s.subTimeMu.Unlock()
			if ok {
				mCommitLatency.Observe(time.Since(t).Seconds())
			}
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// runLockstep adapts the synchronous simulator to the streaming shape:
// one instance at a time, pulled from the submission queue.
func (s *Session) runLockstep(ctx context.Context, runner *core.Runner) {
	if !s.emitReplayed(ctx) {
		s.finish(nil, ctx.Err())
		return
	}
	res := &runtime.Result{
		RunResult: core.RunResult{LenBits: runner.Protocol().LenBits()},
		Window:    1,
	}
	res.Instances = append(res.Instances, s.replayed...)
	emit := s.emitFunc(ctx)
	start := time.Now()
	var err error
loop:
	for {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break loop
		case in, ok := <-s.subs:
			if !ok {
				break loop
			}
			var ir *core.InstanceResult
			if ir, err = runner.RunInstance(in); err != nil {
				break loop
			}
			res.Instances = append(res.Instances, ir)
			if err = emit(ir); err != nil {
				break loop
			}
		}
	}
	res.Wall = time.Since(start)
	if err != nil {
		s.finish(nil, err)
		return
	}
	s.finish(res, nil)
}

// finish records the session's terminal state. done closes before commits
// so a consumer that sees Commits end always observes the final Err.
func (s *Session) finish(res *runtime.Result, err error) {
	if s.slog != nil {
		s.slog.log.Sync() // push the trailing commit records to disk
	}
	s.res = res
	s.err = err
	close(s.done)
	close(s.commits)
}

// Submit enqueues one broadcast payload and returns the sequence number
// it will commit as. Submit blocks while the pipeline is saturated (W
// instances in flight, submission queue full) — the session's
// backpressure — until ctx is canceled, the payload is accepted, or the
// session ends. Concurrent Submits are serialized; the returned Seq
// promises ordering, not commitment — a session that fails or is canceled
// ends its commit stream early (see Err).
func (s *Session) Submit(ctx context.Context, payload []byte) (Seq, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(payload) != s.lenBytes {
		return 0, fmt.Errorf("nab: payload is %d bytes, session broadcasts %d", len(payload), s.lenBytes)
	}
	s.submitMu.Lock()
	// An ended session reports ErrSessionClosed even though Close also
	// marks it drained: closed is the stronger, terminal state.
	if err := s.endedErr(); err != nil {
		s.submitMu.Unlock()
		return 0, err
	}
	if s.drained {
		s.submitMu.Unlock()
		return 0, ErrSessionDraining
	}
	p := append([]byte(nil), payload...) // the caller may reuse its buffer
	enqueue := time.Now()
	select {
	case s.subs <- p:
		s.next++
		seq := s.next
		mSubmitWait.Observe(time.Since(enqueue).Seconds())
		s.subTimeMu.Lock()
		s.subTimes[seq] = time.Now()
		s.subTimeMu.Unlock()
		if s.slog == nil {
			s.submitMu.Unlock()
			return seq, nil
		}
		// Append under the lock (record order must match sequence
		// order), fsync outside it: concurrent submitters coalesce into
		// one group-committed fsync, and the commit logger orders itself
		// behind this record.
		err := s.slog.appendSubmit(int(seq), p)
		s.submitMu.Unlock()
		if err == nil {
			err = s.slog.syncSubmits()
		}
		if err != nil {
			return seq, fmt.Errorf("nab: wal submit: %w", err)
		}
		return seq, nil
	case <-ctx.Done():
		s.submitMu.Unlock()
		return 0, ctx.Err()
	case <-s.done:
		s.submitMu.Unlock()
		return 0, s.endedErr()
	}
}

// RecoveredSeq returns the highest sequence number restored from the
// write-ahead log (0 for fresh sessions): a Recover session has already
// accounted for every payload up to it — committed ones are re-delivered
// with Commit.Replayed set, uncommitted ones re-enter the stream
// automatically — so a producer replaying its workload should skip them.
func (s *Session) RecoveredSeq() Seq { return s.recoveredSeq }

// endedErr reports the session's terminal state as a Submit error, nil
// while it is still live.
func (s *Session) endedErr() error {
	select {
	case <-s.done:
		if s.err != nil {
			return fmt.Errorf("%w: %w", ErrSessionClosed, s.err)
		}
		return ErrSessionClosed
	default:
		return nil
	}
}

// Commits returns the stream of committed instances, strictly in Seq
// order. The channel closes when the session ends — after Drain completes
// the stream cleanly, or early on failure or cancellation; check Err once
// it closes.
func (s *Session) Commits() <-chan Commit { return s.commits }

// Drain closes the submission stream (subsequent Submits fail:
// ErrSessionDraining while accepted payloads still commit,
// ErrSessionClosed once the session has ended) and waits until every
// accepted payload has committed, the session fails, or ctx is
// canceled. It returns the session's terminal error, nil for a clean
// drain.
//
// A Submit blocked on backpressure holds the stream open; Drain waits
// behind it (bounded by ctx) and completes the close once it yields.
func (s *Session) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	closed := make(chan struct{})
	go func() {
		s.closeSubs()
		close(closed)
	}()
	select {
	case <-closed:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-s.done:
		return s.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// closeSubs ends the submission stream exactly once.
func (s *Session) closeSubs() {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	if !s.drained {
		s.drained = true
		close(s.subs)
	}
}

// Err returns the session's terminal error: nil while the session is
// live or after a clean drain, the cause otherwise (context.Canceled
// after cancellation). It is the value to check when Commits closes.
func (s *Session) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Result returns the session's aggregate accounting (wall clock, replays,
// per-link bits) once it has ended; nil while live or when the session
// failed before producing a result.
func (s *Session) Result() *PipelineResult {
	select {
	case <-s.done:
		return s.res
	default:
		return nil
	}
}

// Disputes snapshots the engine's accumulated dispute set.
func (s *Session) Disputes() *DisputeSet { return s.disputes() }

// Cluster returns the underlying cluster membership for WithCluster
// sessions (transport drop accounting, local node set), nil otherwise.
func (s *Session) Cluster() *ClusterNode { return s.node }

// Close ends the session: the submission stream closes, any in-flight
// executions are aborted (prefer Drain first for a clean shutdown), and
// the engine with its transport is torn down. Close is idempotent and
// safe to call concurrently; it blocks until teardown completes.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		// Cancel first: it ends the engine loop, which releases any
		// Submit blocked on backpressure — that Submit holds submitMu,
		// which closeSubs needs.
		s.cancel()
		<-s.done
		s.closeSubs()
		if s.closer != nil {
			s.closeErr = s.closer()
		}
		if s.slog != nil {
			if err := s.slog.close(); s.closeErr == nil {
				s.closeErr = err
			}
		}
		if s.flightDisarm != nil {
			s.flightDisarm()
		}
	})
	return s.closeErr
}
