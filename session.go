package nab

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nab/internal/cluster"
	"nab/internal/core"
	"nab/internal/dispute"
	"nab/internal/runtime"
)

// Seq is the broadcast sequence number a Session assigns at submission:
// the NAB instance number (1-based) the payload will commit as. Commits
// are delivered strictly in Seq order.
type Seq int

// Commit is one committed broadcast instance, delivered on
// Session.Commits in submission order.
type Commit struct {
	// Seq echoes the sequence number Submit returned for this payload.
	Seq Seq
	// Result is the full instance report: per-node outputs (local nodes
	// only under WithLocalNodes or WithCluster), the mismatch/phase3
	// schedule and dispute-control findings.
	Result *InstanceResult
}

// ErrSessionDraining is returned by Submit while the session drains:
// Drain closed the submission stream but accepted payloads are still
// committing.
var ErrSessionDraining = errors.New("nab: session draining: submit after drain")

// ErrSessionClosed is returned by Submit once the session has ended —
// after Close, after a completed Drain, or once the engine failed.
var ErrSessionClosed = errors.New("nab: session closed")

// DisputeSet is the accumulated dispute relation (pairs and proven-faulty
// nodes) an engine carries across instances.
type DisputeSet = dispute.Set

// sessionOptions collects the functional options of Open.
type sessionOptions struct {
	lockstep     bool
	window       int
	transport    Transport
	chanOpts     TransportOptions
	localNodes   []NodeID
	adversaries  map[NodeID]Adversary
	commitBuffer int

	cluster     *ClusterConfig
	clusterID   NodeID
	clusterOpts ClusterOptions
}

// SessionOption customizes Open.
type SessionOption func(*sessionOptions)

// WithLockstep runs the session on the lockstep synchronous simulator
// (core.Runner) — one instance at a time, the paper's reference model and
// the oracle the concurrent engines are verified against.
func WithLockstep() SessionOption {
	return func(o *sessionOptions) { o.lockstep = true }
}

// WithWindow sets the pipelined engine's in-flight window W (default 4).
// W=1 degenerates to sequential execution on the concurrent engine.
func WithWindow(w int) SessionOption {
	return func(o *sessionOptions) { o.window = w }
}

// WithTransport runs the pipelined engine's node links over tr (e.g.
// NewTCPTransport) instead of the default in-process bus. The session
// takes ownership and closes it.
func WithTransport(tr Transport) SessionOption {
	return func(o *sessionOptions) { o.transport = tr }
}

// WithTransportOptions tunes the default in-process bus (token-bucket
// pacing, inbox depth) when no WithTransport is given.
func WithTransportOptions(opt TransportOptions) SessionOption {
	return func(o *sessionOptions) { o.chanOpts = opt }
}

// WithLocalNodes restricts the pipelined engine to hosting the given
// nodes' actors — the multi-process deployment where the transport
// carries the rest of the topology's traffic (see PipelineConfig's
// LocalNodes; prefer WithCluster, which also wires the control plane).
func WithLocalNodes(nodes ...NodeID) SessionOption {
	return func(o *sessionOptions) { o.localNodes = append(o.localNodes, nodes...) }
}

// WithAdversary scripts node v's Byzantine behaviour, merging over the
// Config's Adversaries map. Prefer SeededRandomAdversary for randomized
// strategies — it stays deterministic under any window.
func WithAdversary(v NodeID, a Adversary) SessionOption {
	return func(o *sessionOptions) {
		if o.adversaries == nil {
			o.adversaries = map[NodeID]Adversary{}
		}
		o.adversaries[v] = a
	}
}

// WithCommitBuffer sets the capacity of the Commits channel (default 16).
// A consumer that falls more than this many commits behind exerts
// backpressure: the pipeline stalls, and once the submission queue fills,
// Submit blocks — end-to-end flow control from consumer to producer.
func WithCommitBuffer(n int) SessionOption {
	return func(o *sessionOptions) { o.commitBuffer = n }
}

// WithCluster joins a multi-process cluster as the host of node id and
// runs the session on the partial engine driving this process's nodes
// (full-mesh TCP links, coordinator control plane). The engine
// configuration — topology, window, scripted adversaries — comes from the
// shared cluster config, so the Config passed to Open must be zero.
// Every process of the cluster must feed its session identical payload
// sequences.
func WithCluster(cfg *ClusterConfig, id NodeID, opt ClusterOptions) SessionOption {
	return func(o *sessionOptions) {
		o.cluster = cfg
		o.clusterID = id
		o.clusterOpts = opt
	}
}

// Session is the unified streaming interface over every NAB execution
// engine: clients Submit payloads continuously and consume Commits as
// they land, with the engine keeping its pipeline full in between — the
// session-oriented shape of a long-lived coded-broadcast service, in
// contrast to the one-shot batch calls it replaces (Runner.Run,
// PipelinedRunner.Run, ClusterNode.Run).
//
//	sess, err := nab.Open(ctx, cfg, nab.WithWindow(4))
//	...
//	go func() {
//		for _, p := range payloads {
//			if _, err := sess.Submit(ctx, p); err != nil { ... }
//		}
//		sess.Drain(ctx)
//	}()
//	for c := range sess.Commits() {
//		// c.Result.Outputs — committed in Seq order
//	}
//	err = sess.Err()
//
// All engines commit byte-identical outputs for identical payload
// sequences; the differential session tests assert it continuously.
type Session struct {
	lenBytes int
	node     *ClusterNode // non-nil for WithCluster sessions
	closer   func() error
	disputes func() *DisputeSet
	cancel   context.CancelFunc

	// submitMu serializes producers and guards the submission stream's
	// lifecycle, so Drain never closes subs under a blocked send.
	submitMu sync.Mutex
	subs     chan []byte
	next     Seq
	drained  bool

	commits chan Commit
	done    chan struct{}
	err     error           // terminal error; written before done closes
	res     *PipelineResult // aggregate accounting; written before done closes

	closeOnce sync.Once
	closeErr  error
}

// Open validates cfg, starts the selected engine and returns a live
// Session. The default engine is the concurrent pipelined runtime;
// WithLockstep selects the synchronous simulator and WithCluster the
// multi-process partial engine. Canceling ctx aborts the session: every
// in-flight instance execution is torn down (mid-dispute included),
// Commits closes, and Err reports the cancellation.
//
// Close the session when done — it owns the engine and its transport.
func Open(ctx context.Context, cfg Config, opts ...SessionOption) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := sessionOptions{commitBuffer: 16}
	for _, opt := range opts {
		opt(&o)
	}
	if o.commitBuffer < 1 {
		return nil, fmt.Errorf("nab: commit buffer %d must be >= 1", o.commitBuffer)
	}

	sctx, cancel := context.WithCancel(ctx)
	s := &Session{
		cancel:  cancel,
		commits: make(chan Commit, o.commitBuffer),
		done:    make(chan struct{}),
	}
	fail := func(err error) (*Session, error) {
		cancel()
		return nil, err
	}

	switch {
	case o.cluster != nil:
		if o.lockstep || o.transport != nil || o.localNodes != nil || o.adversaries != nil || o.window != 0 {
			return fail(errors.New("nab: WithCluster derives engine, window, transport and adversaries from the cluster config; drop the conflicting options"))
		}
		if cfg.Graph != nil {
			return fail(errors.New("nab: WithCluster derives the configuration from the cluster config; pass a zero Config"))
		}
		node, err := cluster.StartContext(sctx, o.cluster, o.clusterID, o.clusterOpts)
		if err != nil {
			return fail(err)
		}
		s.lenBytes = o.cluster.LenBytes
		s.node = node
		s.closer = node.Close
		s.disputes = node.Runtime().Disputes
		s.subs = make(chan []byte, max(1, o.cluster.Window))
		go func() {
			res, err := node.Stream(sctx, s.subs, s.emitFunc(sctx))
			s.finish(res, err)
		}()

	case o.lockstep:
		if o.transport != nil || o.localNodes != nil {
			return fail(errors.New("nab: the lockstep engine runs on the synchronous simulator; WithTransport/WithLocalNodes need the pipelined engine"))
		}
		if o.window > 1 {
			return fail(fmt.Errorf("nab: the lockstep engine is sequential; window %d needs the pipelined engine", o.window))
		}
		mergeAdversaries(&cfg, o.adversaries)
		runner, err := core.NewRunner(cfg)
		if err != nil {
			return fail(err)
		}
		s.lenBytes = cfg.LenBytes
		s.disputes = runner.Disputes
		s.subs = make(chan []byte, 1)
		go s.runLockstep(sctx, runner)

	default:
		mergeAdversaries(&cfg, o.adversaries)
		rt, err := runtime.New(runtime.Config{
			Config:      cfg,
			Window:      o.window,
			Transport:   o.transport,
			ChanOptions: o.chanOpts,
			LocalNodes:  o.localNodes,
		})
		if err != nil {
			return fail(err)
		}
		s.lenBytes = cfg.LenBytes
		s.closer = rt.Close
		s.disputes = rt.Disputes
		s.subs = make(chan []byte, rt.Window())
		go func() {
			res, err := rt.RunStream(sctx, s.subs, s.emitFunc(sctx))
			s.finish(res, err)
		}()
	}
	return s, nil
}

// mergeAdversaries overlays opts adversaries onto the config's map
// without mutating the caller's.
func mergeAdversaries(cfg *Config, extra map[NodeID]Adversary) {
	if len(extra) == 0 {
		return
	}
	merged := make(map[NodeID]Adversary, len(cfg.Adversaries)+len(extra))
	for v, a := range cfg.Adversaries {
		merged[v] = a
	}
	for v, a := range extra {
		merged[v] = a
	}
	cfg.Adversaries = merged
}

// emitFunc is the engine's per-commit hook: push onto the Commits channel
// with backpressure, aborting if the session context ends first.
func (s *Session) emitFunc(ctx context.Context) func(*core.InstanceResult) error {
	return func(ir *core.InstanceResult) error {
		select {
		case s.commits <- Commit{Seq: Seq(ir.K), Result: ir}:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// runLockstep adapts the synchronous simulator to the streaming shape:
// one instance at a time, pulled from the submission queue.
func (s *Session) runLockstep(ctx context.Context, runner *core.Runner) {
	res := &runtime.Result{
		RunResult: core.RunResult{LenBits: runner.Protocol().LenBits()},
		Window:    1,
	}
	emit := s.emitFunc(ctx)
	start := time.Now()
	var err error
loop:
	for {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break loop
		case in, ok := <-s.subs:
			if !ok {
				break loop
			}
			var ir *core.InstanceResult
			if ir, err = runner.RunInstance(in); err != nil {
				break loop
			}
			res.Instances = append(res.Instances, ir)
			if err = emit(ir); err != nil {
				break loop
			}
		}
	}
	res.Wall = time.Since(start)
	if err != nil {
		s.finish(nil, err)
		return
	}
	s.finish(res, nil)
}

// finish records the session's terminal state. done closes before commits
// so a consumer that sees Commits end always observes the final Err.
func (s *Session) finish(res *runtime.Result, err error) {
	s.res = res
	s.err = err
	close(s.done)
	close(s.commits)
}

// Submit enqueues one broadcast payload and returns the sequence number
// it will commit as. Submit blocks while the pipeline is saturated (W
// instances in flight, submission queue full) — the session's
// backpressure — until ctx is canceled, the payload is accepted, or the
// session ends. Concurrent Submits are serialized; the returned Seq
// promises ordering, not commitment — a session that fails or is canceled
// ends its commit stream early (see Err).
func (s *Session) Submit(ctx context.Context, payload []byte) (Seq, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(payload) != s.lenBytes {
		return 0, fmt.Errorf("nab: payload is %d bytes, session broadcasts %d", len(payload), s.lenBytes)
	}
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	// An ended session reports ErrSessionClosed even though Close also
	// marks it drained: closed is the stronger, terminal state.
	if err := s.endedErr(); err != nil {
		return 0, err
	}
	if s.drained {
		return 0, ErrSessionDraining
	}
	p := append([]byte(nil), payload...) // the caller may reuse its buffer
	select {
	case s.subs <- p:
		s.next++
		return s.next, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-s.done:
		return 0, s.endedErr()
	}
}

// endedErr reports the session's terminal state as a Submit error, nil
// while it is still live.
func (s *Session) endedErr() error {
	select {
	case <-s.done:
		if s.err != nil {
			return fmt.Errorf("%w: %w", ErrSessionClosed, s.err)
		}
		return ErrSessionClosed
	default:
		return nil
	}
}

// Commits returns the stream of committed instances, strictly in Seq
// order. The channel closes when the session ends — after Drain completes
// the stream cleanly, or early on failure or cancellation; check Err once
// it closes.
func (s *Session) Commits() <-chan Commit { return s.commits }

// Drain closes the submission stream (subsequent Submits fail:
// ErrSessionDraining while accepted payloads still commit,
// ErrSessionClosed once the session has ended) and waits until every
// accepted payload has committed, the session fails, or ctx is
// canceled. It returns the session's terminal error, nil for a clean
// drain.
//
// A Submit blocked on backpressure holds the stream open; Drain waits
// behind it (bounded by ctx) and completes the close once it yields.
func (s *Session) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	closed := make(chan struct{})
	go func() {
		s.closeSubs()
		close(closed)
	}()
	select {
	case <-closed:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-s.done:
		return s.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// closeSubs ends the submission stream exactly once.
func (s *Session) closeSubs() {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	if !s.drained {
		s.drained = true
		close(s.subs)
	}
}

// Err returns the session's terminal error: nil while the session is
// live or after a clean drain, the cause otherwise (context.Canceled
// after cancellation). It is the value to check when Commits closes.
func (s *Session) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Result returns the session's aggregate accounting (wall clock, replays,
// per-link bits) once it has ended; nil while live or when the session
// failed before producing a result.
func (s *Session) Result() *PipelineResult {
	select {
	case <-s.done:
		return s.res
	default:
		return nil
	}
}

// Disputes snapshots the engine's accumulated dispute set.
func (s *Session) Disputes() *DisputeSet { return s.disputes() }

// Cluster returns the underlying cluster membership for WithCluster
// sessions (transport drop accounting, local node set), nil otherwise.
func (s *Session) Cluster() *ClusterNode { return s.node }

// Close ends the session: the submission stream closes, any in-flight
// executions are aborted (prefer Drain first for a clean shutdown), and
// the engine with its transport is torn down. Close is idempotent and
// safe to call concurrently; it blocks until teardown completes.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		// Cancel first: it ends the engine loop, which releases any
		// Submit blocked on backpressure — that Submit holds submitMu,
		// which closeSubs needs.
		s.cancel()
		<-s.done
		s.closeSubs()
		if s.closer != nil {
			s.closeErr = s.closer()
		}
	})
	return s.closeErr
}
