// Package nab is a Go implementation of NAB — the Network-Aware Byzantine
// Broadcast algorithm of Liang & Vaidya (PODC 2012, arXiv:1106.1845):
// throughput-optimal (within a constant factor of capacity) Byzantine
// broadcast for synchronous point-to-point networks with per-link
// capacities, at most f < n/3 Byzantine nodes and vertex connectivity at
// least 2f+1.
//
// The package is a facade over the substrates in internal/: capacitated
// graphs and flow algorithms, spanning-structure packing, GF(2^m) linear
// coding, a synchronous network simulator, classic Byzantine broadcast
// (EIG) over disjoint-path relays, and dispute control.
//
// # Quick start
//
//	g := nab.CompleteGraph(4, 1)          // K4, unit capacities
//	runner, err := nab.NewRunner(nab.Config{
//		Graph: g, Source: 1, F: 1, LenBytes: 32,
//	})
//	if err != nil { ... }
//	res, err := runner.RunInstance(input) // input: 32 bytes
//	// res.Outputs holds every fault-free node's agreed value.
//
// Use AnalyzeCapacity to compute the paper's gamma*, rho*, the Theorem 2
// capacity upper bound and the Theorem 3 throughput guarantee for a
// topology.
//
// # Streaming sessions
//
// Session is the primary execution API: one streaming, context-aware
// facade over every engine. Clients submit payloads continuously and
// consume commits as they land; the pipelined engine keeps W instances in
// flight underneath (Appendix D's pipelining), with backpressure from a
// slow consumer all the way to Submit:
//
//	sess, err := nab.Open(ctx, nab.Config{Graph: g, Source: 1, F: 1, LenBytes: 64},
//		nab.WithWindow(4))
//	if err != nil { ... }
//	defer sess.Close()
//	go func() {
//		for _, p := range payloads {
//			seq, err := sess.Submit(ctx, p) // blocks when saturated
//			...
//		}
//		sess.Drain(ctx)
//	}()
//	for c := range sess.Commits() {
//		// c.Result.Outputs, committed in c.Seq order
//	}
//	err = sess.Err()
//
// WithLockstep selects the synchronous reference simulator, WithCluster
// the multi-process partial engine; identical payload sequences commit
// byte-identical outputs on every engine. WithDurability/Recover put a
// write-ahead log (internal/wal) under any engine: accepted submissions
// and commits are persisted, a killed process resumes where its log
// ends, and cluster processes rejoin a running mesh mid-stream.
//
// # Concurrent pipelined runtime
//
// Runner executes instances one at a time on the lockstep simulator. The
// concurrent runtime (internal/runtime over internal/transport) runs every
// node as an actor exchanging real messages and keeps a window of W
// instances in flight — Appendix D's pipelining made operational — while
// committing outputs identical to Runner's:
//
//	rt, err := nab.NewPipelinedRunner(nab.PipelineConfig{
//		Config: nab.Config{Graph: g, Source: 1, F: 1, LenBytes: 64},
//		Window: 4,
//	})
//	if err != nil { ... }
//	defer rt.Close()
//	subs := make(chan []byte, len(inputs))
//	for _, in := range inputs { subs <- in }
//	close(subs)
//	res, err := rt.RunStream(ctx, subs, nil) // res.Instances, res.Wall, res.InstancesPerSec()
//
// Pass a Transport (e.g. NewTCPTransport) to serve over loopback TCP with
// binary wire framing; cmd/nabserve wraps that in a request-streaming
// daemon.
//
// # Multi-process cluster
//
// The cluster deployment (internal/cluster, cmd/nabnode) runs every node
// in an OS process of its own: full-mesh TCP links dialed from a shared
// ClusterConfig carry the protocol frames (with optional per-link
// capacity pacing on the wire), each process's runtime drives only its
// local node, and committed outputs remain byte-identical to Runner:
//
//	cfg, err := nab.LoadClusterConfig("cluster.json")
//	node, err := nab.StartClusterNode(cfg, 3, nab.ClusterOptions{})
//	defer node.Close()
//	res, err := node.Stream(ctx, subs, nil) // this node's committed outputs
//
// One command brings a local cluster up: `nabnode -spawn-local -topo k4`.
package nab

import (
	"math/rand"

	"nab/internal/adversary"
	"nab/internal/baseline"
	"nab/internal/capacity"
	"nab/internal/cluster"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/runtime"
	"nab/internal/topo"
	"nab/internal/transport"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Graph is a simple directed graph with positive integer link
	// capacities — the paper's network model.
	Graph = graph.Directed
	// NodeID identifies a vertex.
	NodeID = graph.NodeID
	// Edge is a directed capacitated link.
	Edge = graph.Edge
	// Config parameterizes a NAB run (topology, source, fault bound f,
	// input size, adversaries, ablation overrides).
	Config = core.Config
	// Runner drives repeated NAB instances, carrying dispute state.
	Runner = core.Runner
	// InstanceResult reports one instance: outputs, per-phase times,
	// dispute-control findings.
	InstanceResult = core.InstanceResult
	// RunResult aggregates instances and computes throughput.
	RunResult = core.RunResult
	// Adversary customizes a faulty node's behaviour.
	Adversary = core.Adversary
	// HonestBehaviour is the no-op Adversary (embed it to override
	// selected hooks).
	HonestBehaviour = core.Honest
	// CapacityReport carries gamma*, rho*, the capacity upper bound and
	// throughput guarantee of a topology.
	CapacityReport = capacity.Report
	// BaselineResult reports a capacity-oblivious baseline broadcast.
	BaselineResult = baseline.Result
)

// NewGraph returns an empty capacitated directed graph.
func NewGraph() *Graph { return graph.NewDirected() }

// ParseGraph reads the "from to capacity" text format (one edge per line,
// '#' comments, "node v" for isolated vertices).
func ParseGraph(text string) (*Graph, error) { return graph.ParseDirected(text) }

// Re-exported pipelined-runtime types. See internal/runtime and
// internal/transport for full documentation.
type (
	// PipelineConfig parameterizes the concurrent runtime: an embedded
	// Config plus the in-flight window and transport selection.
	PipelineConfig = runtime.Config
	// PipelinedRunner executes NAB instances concurrently with W in
	// flight, committing outputs identical to Runner's.
	PipelinedRunner = runtime.Runtime
	// PipelineResult extends RunResult with wall-clock, replay and
	// per-link accounting.
	PipelineResult = runtime.Result
	// PipelineReport is the aggregate throughput accounting, comparable
	// against CapacityReport's Theorem 2/3 bounds.
	PipelineReport = runtime.Report
	// Transport is a pluggable point-to-point substrate (per-link
	// Dial/Send/Recv with capacity accounting).
	Transport = transport.Transport
	// TransportOptions tunes the in-process bus (token-bucket pacing,
	// optional chaos physics).
	TransportOptions = transport.ChanOptions
	// ChaosConfig scripts seeded hostile network physics — per-link
	// latency/jitter, reorder windows, asymmetric partitions with
	// scheduled heal times, slow-link throttles — for any transport:
	// set TransportOptions.Chaos (in-process bus), pass it to
	// NewTCPTransportOpts, or put it in ClusterConfig.Chaos so every
	// process of a cluster injects the same physics.
	ChaosConfig = transport.ChaosConfig
	// ChaosLink is one directed link's chaos physics profile.
	ChaosLink = transport.LinkChaos
	// ChaosLinkRule scopes a ChaosLink profile to matching links.
	ChaosLinkRule = transport.LinkRule
	// ChaosPartition schedules one asymmetric partition with a heal time.
	ChaosPartition = transport.Partition
	// ChaosDuration is a time.Duration that marshals as "50ms" in JSON.
	ChaosDuration = transport.Duration
	// TCPTransportOptions tunes NewTCPTransportOpts.
	TCPTransportOptions = transport.TCPOptions
)

// NewRunner validates cfg and prepares a NAB execution.
func NewRunner(cfg Config) (*Runner, error) { return core.NewRunner(cfg) }

// NewPipelinedRunner validates cfg and starts the concurrent runtime.
// Close it when done.
func NewPipelinedRunner(cfg PipelineConfig) (*PipelinedRunner, error) { return runtime.New(cfg) }

// NewPipelineReport derives the aggregate throughput accounting for a
// finished run over topology g — use it on a Session's Result to set the
// measured rates next to the paper's Theorem 2/3 bounds (capRep may be
// nil).
func NewPipelineReport(g *Graph, res *PipelineResult, capRep *CapacityReport) *PipelineReport {
	return runtime.NewReport(g, res, capRep)
}

// NewTCPTransport builds a loopback-TCP substrate over g (one listener
// per node, one connection per directed link, encoding/binary framing)
// for PipelineConfig.Transport.
func NewTCPTransport(g *Graph) (Transport, error) { return transport.NewTCP(g) }

// NewTCPTransportOpts is NewTCPTransport with options (chaos physics).
func NewTCPTransportOpts(g *Graph, opt TCPTransportOptions) (Transport, error) {
	return transport.NewTCPOpts(g, opt)
}

// Re-exported multi-process cluster types. See internal/cluster for full
// documentation.
type (
	// ClusterConfig is the shared description of a multi-process
	// deployment: node placements, topology, workload and control plane.
	ClusterConfig = cluster.Config
	// ClusterNodeSpec places one node (id, hosting address, optional
	// scripted adversary).
	ClusterNodeSpec = cluster.NodeSpec
	// ClusterNode is one process's membership in a cluster.
	ClusterNode = cluster.Node
	// ClusterOptions tunes a process's endpoints (wire pacing, boot
	// timeout).
	ClusterOptions = cluster.Options
)

// LoadClusterConfig reads and validates a cluster.json.
func LoadClusterConfig(path string) (*ClusterConfig, error) { return cluster.Load(path) }

// StartClusterNode joins the cluster as the host of node id (and any
// node sharing its address). Close the node when done.
func StartClusterNode(cfg *ClusterConfig, id NodeID, opt ClusterOptions) (*ClusterNode, error) {
	return cluster.Start(cfg, id, opt)
}

// ClusterReservation holds bound listeners for cluster endpoints until
// the node bootstrap takes them over (see ReserveClusterAddrs).
type ClusterReservation = cluster.Reservation

// ReserveClusterAddrs binds n loopback listeners on ephemeral ports and
// keeps them held for building local cluster configs: hand the
// reservation to StartClusterNode via ClusterOptions.Reservation so the
// ports cannot be lost to another process between reservation and boot.
func ReserveClusterAddrs(n int) (*ClusterReservation, error) { return cluster.ReserveAddrs(n) }

// AnalyzeCapacity computes the paper's throughput quantities for source in
// g with fault bound f. With exact=true the reachable-instance-graph family
// is enumerated exactly (small networks); otherwise the node-deletion
// family is used.
func AnalyzeCapacity(g *Graph, source NodeID, f int, exact bool) (*CapacityReport, error) {
	return capacity.Analyze(g, source, f, exact)
}

// --- topologies -------------------------------------------------------------

// CompleteGraph returns the complete bidirectional graph on n nodes (ids
// 1..n) with uniform capacity c.
func CompleteGraph(n int, c int64) *Graph { return topo.CompleteBi(n, c) }

// CirculantGraph returns the bidirectional circulant C_n(offsets...) with
// uniform capacity c — the multi-hop family used in pipelining experiments.
func CirculantGraph(n int, c int64, offsets ...int) (*Graph, error) {
	return topo.Circulant(n, c, offsets...)
}

// RandomGraph returns a random bidirectional network with vertex
// connectivity at least minConn and capacities in [1, maxCap].
func RandomGraph(rng *rand.Rand, n, minConn int, maxCap int64) (*Graph, error) {
	return topo.RandomConnected(rng, n, minConn, maxCap)
}

// HeterogeneousGraph returns a clique whose core links are fat and whose
// remaining links are thin — the network-awareness showcase.
func HeterogeneousGraph(n, fatNodes int, fatCap, thinCap int64) (*Graph, error) {
	return topo.Heterogeneous(n, fatNodes, fatCap, thinCap)
}

// OneThinLinkGraph returns a fat clique with a single thin link — the
// topology where capacity-oblivious broadcast is arbitrarily slower than
// NAB.
func OneThinLinkGraph(n int, thinA, thinB NodeID, fatCap, thinCap int64) (*Graph, error) {
	return topo.OneThinLink(n, thinA, thinB, fatCap, thinCap)
}

// PaperFig1Graph returns the worked-example graph of the paper's Figure
// 1(a), reconstructed from the numbers stated in the text.
func PaperFig1Graph() *Graph { return topo.Fig1a() }

// --- adversaries ------------------------------------------------------------

// CrashAdversary returns a fail-stop node (silent in every phase).
func CrashAdversary() Adversary { return adversary.Crash{} }

// BlockFlipperAdversary corrupts Phase-1 blocks sent to the given victims
// (all children when none are named); on the source it equivocates.
func BlockFlipperAdversary(victims ...NodeID) Adversary {
	if len(victims) == 0 {
		return &adversary.BlockFlipper{}
	}
	m := make(map[NodeID]bool, len(victims))
	for _, v := range victims {
		m[v] = true
	}
	return &adversary.BlockFlipper{Victims: m}
}

// CodedCorruptorAdversary corrupts equality-check symbols.
func CodedCorruptorAdversary() Adversary { return &adversary.CodedCorruptor{} }

// FalseAlarmAdversary always announces MISMATCH, forcing dispute control.
func FalseAlarmAdversary() Adversary { return adversary.FalseAlarm{} }

// SeededRandomAdversary is the instance-scoped coin flipper: every
// instance draws from a fresh stream derived from (seed, instance), so
// runs are reproducible under any pipeline window, across barrier
// replays, and across cluster processes.
func SeededRandomAdversary(seed int64) Adversary {
	return &adversary.Random{Seed: seed}
}

// --- baselines --------------------------------------------------------------

// BaselineEIG broadcasts input with classic capacity-oblivious Byzantine
// broadcast (EIG over 2f+1 disjoint paths), for throughput comparison.
func BaselineEIG(g *Graph, source NodeID, f int, input []byte) (*BaselineResult, error) {
	return baseline.RunEIG(g, source, f, input)
}

// BaselineFlood broadcasts input along 2f+1 node-disjoint paths per
// destination with receiver-side majority.
func BaselineFlood(g *Graph, source NodeID, f int, input []byte) (*BaselineResult, error) {
	return baseline.RunFlood(g, source, f, input)
}
