package nab

import (
	"fmt"
	"sync"
	"time"

	"nab/internal/core"
	"nab/internal/dispute"
	"nab/internal/graph"
	"nab/internal/obs"
	"nab/internal/wal"
)

// recoveryLog narrates WAL replay at Open — how much of a previous
// incarnation survived and where the stream resumes. Shares the rejoin
// switch since a cluster restart is where recovery matters most.
var recoveryLog = obs.New("recovery", "NAB_RECOVERY_DEBUG", "NAB_REJOIN_DEBUG")

// durabilityOptions configures the session WAL.
type durabilityOptions struct {
	dir       string
	resume    bool
	ckptEvery int
	// segmentBytes overrides the WAL segment size — internal tests use a
	// tiny value to force rotation and cross-segment compaction.
	segmentBytes int64
}

// WithDurability persists the session to a write-ahead log in dir: every
// accepted submission is fsynced (group-committed) before Submit
// returns, and every commit is appended before it is delivered. A
// process killed mid-stream restarts with Recover(dir) and resumes
// exactly where the log ends. Opening a fresh session over a non-empty
// log is refused — that is what Recover is for.
func WithDurability(dir string) SessionOption {
	return func(o *sessionOptions) {
		if o.durability == nil {
			o.durability = &durabilityOptions{}
		}
		o.durability.dir = dir
		o.durability.resume = false
	}
}

// Recover opens the session over an existing WAL in dir (or a fresh one,
// making Recover a restart-safe default): the engine is restored to the
// logged committed prefix, logged-but-uncommitted submissions re-enter
// the stream automatically, and every logged commit is re-delivered on
// Commits with Replayed set before live traffic starts. For WithCluster
// sessions the restart additionally runs the rejoin protocol: the
// process re-pins its mesh links, the cluster rolls back to its common
// committed watermark, and the stream resumes mid-flight — byte-identical
// to the uninterrupted run.
func Recover(dir string) SessionOption {
	return func(o *sessionOptions) {
		if o.durability == nil {
			o.durability = &durabilityOptions{}
		}
		o.durability.dir = dir
		o.durability.resume = true
	}
}

// WithCheckpointInterval makes a durable single-process session write a
// dispute-state checkpoint every n commits and compact the log's
// segments behind it, bounding recovery replay to the live suffix.
// Default 256; cluster sessions ignore checkpoints (a rejoin rollback
// may need any instance above the cluster-wide watermark, so their logs
// keep the full committed history).
func WithCheckpointInterval(n int) SessionOption {
	return func(o *sessionOptions) {
		if o.durability == nil {
			o.durability = &durabilityOptions{}
		}
		o.durability.ckptEvery = n
	}
}

const defaultCheckpointEvery = 256

// sessionLog couples the WAL with the session's append state: the
// encoding scratch, the submit/commit ordering handshake, and the
// dispute-state mirror checkpoints snapshot.
type sessionLog struct {
	log     *wal.Log
	cluster bool

	mu        sync.Mutex
	cond      *sync.Cond
	buf       []byte
	maxSubmit int
	closed    bool
	failed    error // first WAL failure; releases logCommit's submit wait

	// meta is the session's identity record, re-appended ahead of every
	// checkpoint so compaction can never drop the log's last copy.
	meta wal.Meta

	// Checkpoint mirror of the engine's dispute folds (single-process).
	ckptEvery int
	g         *graph.Directed
	disputes  *dispute.Set
	faulty    []graph.NodeID
	faultyIn  map[graph.NodeID]bool
	sinceCkpt int
	// subSeg tracks the segment of each not-yet-committed submission:
	// compaction must never drop a segment holding a submission the
	// engine still has to execute.
	subSeg map[int]uint64
}

func newSessionLog(log *wal.Log, g *graph.Directed, cluster bool, ckptEvery int) *sessionLog {
	sl := &sessionLog{
		log: log, cluster: cluster, ckptEvery: ckptEvery,
		g: g, disputes: dispute.NewSet(), faultyIn: map[graph.NodeID]bool{},
		subSeg: map[int]uint64{},
	}
	if cluster {
		sl.ckptEvery = 0 // rejoin rollbacks need the full history
	} else if sl.ckptEvery == 0 {
		sl.ckptEvery = defaultCheckpointEvery
	}
	sl.cond = sync.NewCond(&sl.mu)
	return sl
}

// appendSubmit frames one accepted submission into the log buffer —
// called under the session's submit lock so record order matches
// sequence order. Durability follows via syncSubmits, OUTSIDE that lock,
// so concurrent submitters share fsyncs (group commit).
func (sl *sessionLog) appendSubmit(k int, payload []byte) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	sl.buf = wal.AppendSubmit(sl.buf[:0], k, payload)
	pos, err := sl.log.Append(wal.TypeSubmit, sl.buf)
	if err != nil {
		sl.fail(err)
		return err
	}
	if k > sl.maxSubmit {
		sl.maxSubmit = k
		sl.subSeg[k] = pos.Seg
		sl.cond.Broadcast()
	}
	return nil
}

// syncSubmits makes every appended record durable (group-committed).
func (sl *sessionLog) syncSubmits() error {
	if err := sl.log.Sync(); err != nil {
		sl.mu.Lock()
		sl.fail(err)
		sl.mu.Unlock()
		return err
	}
	return nil
}

// fail latches the first WAL failure and wakes logCommit's submit-order
// wait — the engine may already hold a payload whose submit record never
// landed, and that commit must error out instead of waiting forever.
// Callers hold sl.mu.
func (sl *sessionLog) fail(err error) {
	if sl.failed == nil {
		sl.failed = err
	}
	sl.cond.Broadcast()
}

// logCommit appends one committed instance ahead of its delivery.
// Durability rides the log's background sync — a crash between delivery
// and fsync re-executes the instance on recovery, which is idempotent by
// determinism. The append waits (briefly) for the instance's submit
// record: a commit record preceding its own submission would leave a
// recovered cluster log unable to re-feed the instance after a rollback.
func (sl *sessionLog) logCommit(ir *core.InstanceResult) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	for sl.maxSubmit < ir.K && !sl.closed && sl.failed == nil {
		sl.cond.Wait()
	}
	if sl.failed != nil {
		return sl.failed
	}
	sl.buf = wal.AppendCommit(sl.buf[:0], ir)
	if _, err := sl.log.Append(wal.TypeCommit, sl.buf); err != nil {
		return err
	}
	delete(sl.subSeg, ir.K)
	if sl.ckptEvery <= 0 {
		return nil
	}
	// Mirror the engine's fold so a checkpoint can snapshot the dispute
	// state without reaching into the (busy) engine.
	if ir.Phase3 {
		for _, p := range ir.NewDisputes {
			sl.disputes.Add(p[0], p[1])
		}
		for _, v := range ir.NewFaulty {
			if !sl.faultyIn[v] {
				sl.faultyIn[v] = true
				sl.faulty = append(sl.faulty, v)
			}
			sl.disputes.MarkFaulty(sl.g, v)
		}
	}
	sl.sinceCkpt++
	if sl.sinceCkpt < sl.ckptEvery {
		return nil
	}
	sl.sinceCkpt = 0
	// Re-assert the session identity ahead of the checkpoint: the kept
	// tail must still carry a meta record once older segments (including
	// the original one) are compacted away.
	sl.buf = wal.AppendMeta(sl.buf[:0], sl.meta)
	pos, err := sl.log.Append(wal.TypeMeta, sl.buf)
	if err != nil {
		return err
	}
	cp := wal.Checkpoint{K: ir.K, Disputes: sl.disputes.Pairs(), Faulty: append([]graph.NodeID(nil), sl.faulty...)}
	sl.buf = wal.AppendCheckpoint(sl.buf[:0], cp)
	if _, err := sl.log.Append(wal.TypeCheckpoint, sl.buf); err != nil {
		return err
	}
	if err := sl.log.Sync(); err != nil {
		return err
	}
	// Never compact past a submission the engine has yet to execute —
	// recovery must be able to re-feed every uncommitted instance.
	keep := pos
	for _, seg := range sl.subSeg {
		if seg < keep.Seg {
			keep.Seg = seg
		}
	}
	return sl.log.Compact(keep)
}

func (sl *sessionLog) close() error {
	sl.mu.Lock()
	sl.closed = true
	sl.cond.Broadcast()
	sl.mu.Unlock()
	return sl.log.Close()
}

// recovery is the state replayed out of a WAL at Open.
type recovery struct {
	k        int                    // committed watermark
	tail     int                    // highest logged submission
	foldList []*core.InstanceResult // restore history (synthetic checkpoint + live commits)
	replayed []*core.InstanceResult // commits present in the log, for re-delivery
	inputs   map[int][]byte         // logged submissions by instance
	// resumed reports a non-empty log: a previous incarnation existed,
	// even if nothing it did survived the crash window. A cluster session
	// must announce a rejoin in that case — its peers may be stalled.
	resumed bool
}

// uncommitted lists the logged-but-uncommitted submissions in order.
func (rec *recovery) uncommitted() ([][]byte, error) {
	var out [][]byte
	for k := rec.k + 1; k <= rec.tail; k++ {
		in, ok := rec.inputs[k]
		if !ok {
			return nil, fmt.Errorf("nab: recover: submission %d missing from the log", k)
		}
		out = append(out, in)
	}
	return out, nil
}

// openSessionLog opens (or resumes) the session WAL and replays it.
func openSessionLog(o *durabilityOptions, fp uint64, node int64, g *graph.Directed, cluster bool) (*sessionLog, *recovery, error) {
	// Submissions sync on the accept path; commit records ride the
	// background group-committed syncer (a commit lost in the batching
	// window re-executes identically on recovery).
	log, err := wal.Open(o.dir, wal.Options{SyncInterval: 5 * time.Millisecond, SegmentBytes: o.segmentBytes})
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*sessionLog, *recovery, error) {
		log.Close()
		return nil, nil, err
	}
	rec := &recovery{inputs: map[int][]byte{}}
	subSegs := map[int]uint64{} // submission K -> segment, for the compaction floor
	sawMeta, sawCkpt := false, false
	firstCommit := 0
	empty := true
	err = log.Replay(func(typ byte, payload []byte, pos wal.Pos) error {
		empty = false
		switch typ {
		case wal.TypeMeta:
			// Meta opens a fresh log and is re-asserted at every
			// checkpoint, so a compacted tail still carries one (not
			// necessarily first).
			m, err := wal.DecodeMeta(payload)
			if err != nil {
				return err
			}
			if m.Fingerprint != fp {
				return fmt.Errorf("nab: recover: log belongs to a different configuration (fingerprint %x, want %x)", m.Fingerprint, fp)
			}
			if m.Node != node {
				return fmt.Errorf("nab: recover: log belongs to cluster node %d, not %d", m.Node, node)
			}
			sawMeta = true
			return nil
		}
		switch typ {
		case wal.TypeSubmit:
			s, err := wal.DecodeSubmit(payload)
			if err != nil {
				return err
			}
			rec.inputs[s.K] = append([]byte(nil), s.Payload...)
			subSegs[s.K] = pos.Seg
			if s.K > rec.tail {
				rec.tail = s.K
			}
		case wal.TypeCommit:
			ir, err := wal.DecodeCommit(payload)
			if err != nil {
				return err
			}
			if firstCommit == 0 {
				// A compacted log's surviving tail starts mid-history;
				// the checkpoint record that follows carries the folded
				// state of everything dropped before it.
				firstCommit = ir.K
				rec.k = ir.K - 1
			}
			if ir.K != rec.k+1 {
				return fmt.Errorf("nab: recover: commit %d out of order (want %d)", ir.K, rec.k+1)
			}
			rec.k = ir.K
			rec.foldList = append(rec.foldList, ir)
			rec.replayed = append(rec.replayed, ir)
		case wal.TypeCheckpoint:
			if cluster {
				return fmt.Errorf("nab: recover: checkpoint record in a cluster log")
			}
			cp, err := wal.DecodeCheckpoint(payload)
			if err != nil {
				return err
			}
			if firstCommit == 0 && rec.k == 0 {
				rec.k = cp.K // tail starts at the checkpoint itself
			} else if cp.K != rec.k {
				return fmt.Errorf("nab: recover: checkpoint at %d does not match committed prefix %d", cp.K, rec.k)
			}
			synth := &core.InstanceResult{
				K: cp.K, Phase3: len(cp.Disputes) > 0 || len(cp.Faulty) > 0,
				NewDisputes: cp.Disputes, NewFaulty: cp.Faulty,
			}
			rec.foldList = []*core.InstanceResult{synth}
			sawCkpt = true
		default:
			return fmt.Errorf("nab: recover: unknown record type %#x", typ)
		}
		return nil
	})
	if err != nil {
		return fail(err)
	}
	if !empty && !o.resume {
		return fail(fmt.Errorf("nab: WithDurability(%q): log is not empty; use Recover to resume it", o.dir))
	}
	if empty {
		sl := newSessionLog(log, g, cluster, o.ckptEvery)
		sl.meta = wal.Meta{Fingerprint: fp, Node: node}
		sl.buf = wal.AppendMeta(sl.buf[:0], sl.meta)
		if _, err := log.AppendSync(wal.TypeMeta, sl.buf); err != nil {
			return fail(err)
		}
		recoveryLog.Debug("wal-created", "dir", o.dir, "cluster", cluster)
		return sl, &recovery{inputs: map[int][]byte{}}, nil
	}
	rec.resumed = true
	recoveryLog.Info("wal-recovered",
		"dir", o.dir, "k", rec.k, "tail", rec.tail,
		"replayed", len(rec.replayed), "checkpointed", sawCkpt, "cluster", cluster)
	if !sawMeta {
		return fail(fmt.Errorf("nab: recover: log carries no meta record"))
	}
	if firstCommit > 1 && !sawCkpt {
		return fail(fmt.Errorf("nab: recover: commits start at %d with no checkpoint carrying the prefix", firstCommit))
	}
	// Submissions of committed instances may have been compacted away
	// with their segments; only the uncommitted range must survive
	// (validated by uncommitted()), and sequence numbering continues from
	// the committed watermark regardless.
	if rec.tail < rec.k {
		rec.tail = rec.k
	}
	// The first commit after a compacted prefix continues from the
	// checkpoint; older replay entries were dropped with their segments.
	sl := newSessionLog(log, g, cluster, o.ckptEvery)
	sl.meta = wal.Meta{Fingerprint: fp, Node: node}
	sl.maxSubmit = rec.tail
	// Seed the compaction floor with the recovered-but-uncommitted
	// backlog: a checkpoint fired before those instances commit must not
	// compact away the segments holding their submissions.
	for k := rec.k + 1; k <= rec.tail; k++ {
		if seg, ok := subSegs[k]; ok {
			sl.subSeg[k] = seg
		}
	}
	// Seed the checkpoint mirror from the recovered history.
	if sl.ckptEvery > 0 {
		for _, ir := range rec.foldList {
			if !ir.Phase3 {
				continue
			}
			for _, p := range ir.NewDisputes {
				sl.disputes.Add(p[0], p[1])
			}
			for _, v := range ir.NewFaulty {
				if !sl.faultyIn[v] {
					sl.faultyIn[v] = true
					sl.faulty = append(sl.faulty, v)
				}
				sl.disputes.MarkFaulty(sl.g, v)
			}
		}
	}
	return sl, rec, nil
}
