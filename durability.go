package nab

import (
	"fmt"
	"sync"
	"time"

	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/obs"
	"nab/internal/wal"
)

// recoveryLog narrates WAL replay at Open — how much of a previous
// incarnation survived and where the stream resumes. Shares the rejoin
// switch since a cluster restart is where recovery matters most.
var recoveryLog = obs.New("recovery", "NAB_RECOVERY_DEBUG", "NAB_REJOIN_DEBUG")

// durabilityOptions configures the session WAL.
type durabilityOptions struct {
	dir       string
	resume    bool
	snapEvery int
	// segmentBytes overrides the WAL segment size — internal tests use a
	// tiny value to force rotation and cross-segment compaction.
	segmentBytes int64
}

// WithDurability persists the session to a write-ahead log in dir: every
// accepted submission is fsynced (group-committed) before Submit
// returns, and every commit is appended before it is delivered. A
// process killed mid-stream restarts with Recover(dir) and resumes
// exactly where the log ends. Opening a fresh session over a non-empty
// log is refused — that is what Recover is for.
func WithDurability(dir string) SessionOption {
	return func(o *sessionOptions) {
		if o.durability == nil {
			o.durability = &durabilityOptions{}
		}
		o.durability.dir = dir
		o.durability.resume = false
	}
}

// Recover opens the session over an existing WAL in dir (or a fresh one,
// making Recover a restart-safe default): the engine is restored to the
// logged committed prefix — directly from the latest snapshot record
// when one anchors the log, with no per-instance replay below it — the
// logged-but-uncommitted submissions re-enter the stream automatically,
// and every logged commit above the snapshot is re-delivered on Commits
// with Replayed set before live traffic starts. For WithCluster sessions
// the restart additionally runs the rejoin protocol: the process re-pins
// its mesh links, the cluster rolls back to its common committed
// watermark, and the stream resumes mid-flight — byte-identical to the
// uninterrupted run.
func Recover(dir string) SessionOption {
	return func(o *sessionOptions) {
		if o.durability == nil {
			o.durability = &durabilityOptions{}
		}
		o.durability.dir = dir
		o.durability.resume = true
	}
}

// WithSnapshotInterval makes a durable single-process session write a
// full engine-state snapshot every n commits and compact the log's
// segments behind it, bounding both the on-disk log size and recovery
// work to the live suffix. Default 256. Cluster sessions ignore the
// interval for their own logs — a rejoin rollback may need any instance
// above the cluster-wide floor, so they snapshot (and compact) only at
// rollback floors, where the whole cluster is provably past the
// watermark.
func WithSnapshotInterval(n int) SessionOption {
	return func(o *sessionOptions) {
		if o.durability == nil {
			o.durability = &durabilityOptions{}
		}
		o.durability.snapEvery = n
	}
}

// WithCheckpointInterval is the former name of WithSnapshotInterval,
// kept for compatibility. Snapshots carry strictly more state than the
// dispute checkpoints they replaced (generation, launch epoch, sequence
// digest); old logs with checkpoint records still recover.
func WithCheckpointInterval(n int) SessionOption { return WithSnapshotInterval(n) }

const defaultSnapshotEvery = 256

// SnapshotInfo describes one written snapshot record.
type SnapshotInfo struct {
	// K is the commit watermark the snapshot captured.
	K int
	// Gen is the dispute-state generation at K.
	Gen int
	// Digest is the committed-sequence chain digest at K.
	Digest uint64
}

// sessionLog couples the WAL with the session's append state: the
// encoding scratch, the submit/commit ordering handshake, and the
// dispute-state mirror snapshots serialize.
type sessionLog struct {
	log     *wal.Log
	cluster bool

	mu        sync.Mutex
	cond      *sync.Cond
	buf       []byte
	maxSubmit int
	closed    bool
	failed    error // first WAL failure; releases logCommit's submit wait

	// meta is the session's identity record, re-appended ahead of every
	// snapshot so compaction can never drop the log's last copy.
	meta wal.Meta

	// Snapshot mirror of the engine's dispute folds (single-process;
	// cluster processes mirror in the cluster node, where rollbacks are
	// visible). The digest chains full commit-record payloads — a
	// process-lineage digest, reset to the anchor's value on recovery.
	snapEvery int
	builder   *core.SnapshotBuilder
	digest    uint64
	lastK     int
	sinceSnap int
	snapCount int64
	// subSeg tracks the segment of each not-yet-committed submission:
	// compaction must never drop a segment holding a submission the
	// engine still has to execute.
	subSeg map[int]uint64
	// commitSeg tracks the segment of each commit record not yet covered
	// by a snapshot: a floor snapshot may trail the committed watermark
	// (cluster rollback floors), and compacting away a segment holding
	// commits above the floor would orphan the (floor, watermark] range
	// and leave the log unrecoverable.
	commitSeg map[int]uint64
}

func newSessionLog(log *wal.Log, g *graph.Directed, cluster bool, snapEvery int) *sessionLog {
	sl := &sessionLog{
		log: log, cluster: cluster, snapEvery: snapEvery,
		digest:    wal.DigestSeed,
		subSeg:    map[int]uint64{},
		commitSeg: map[int]uint64{},
	}
	if cluster {
		sl.snapEvery = 0 // floor snapshots only; see WithSnapshotInterval
	} else {
		sl.builder = core.NewSnapshotBuilder(g)
		if sl.snapEvery == 0 {
			sl.snapEvery = defaultSnapshotEvery
		}
	}
	sl.cond = sync.NewCond(&sl.mu)
	return sl
}

// appendSubmit frames one accepted submission into the log buffer —
// called under the session's submit lock so record order matches
// sequence order. Durability follows via syncSubmits, OUTSIDE that lock,
// so concurrent submitters share fsyncs (group commit).
func (sl *sessionLog) appendSubmit(k int, payload []byte) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	sl.buf = wal.AppendSubmit(sl.buf[:0], k, payload)
	pos, err := sl.log.Append(wal.TypeSubmit, sl.buf)
	if err != nil {
		sl.fail(err)
		return err
	}
	if k > sl.maxSubmit {
		sl.maxSubmit = k
		sl.subSeg[k] = pos.Seg
		sl.cond.Broadcast()
	}
	return nil
}

// syncSubmits makes every appended record durable (group-committed).
func (sl *sessionLog) syncSubmits() error {
	if err := sl.log.Sync(); err != nil {
		sl.mu.Lock()
		sl.fail(err)
		sl.mu.Unlock()
		return err
	}
	return nil
}

// fail latches the first WAL failure and wakes logCommit's submit-order
// wait — the engine may already hold a payload whose submit record never
// landed, and that commit must error out instead of waiting forever.
// Callers hold sl.mu.
func (sl *sessionLog) fail(err error) {
	if sl.failed == nil {
		sl.failed = err
	}
	sl.cond.Broadcast()
}

// logCommit appends one committed instance ahead of its delivery.
// Durability rides the log's background sync — a crash between delivery
// and fsync re-executes the instance on recovery, which is idempotent by
// determinism. The append waits (briefly) for the instance's submit
// record: a commit record preceding its own submission would leave a
// recovered cluster log unable to re-feed the instance after a rollback.
func (sl *sessionLog) logCommit(ir *core.InstanceResult) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	for sl.maxSubmit < ir.K && !sl.closed && sl.failed == nil {
		sl.cond.Wait()
	}
	if sl.failed != nil {
		return sl.failed
	}
	sl.buf = wal.AppendCommit(sl.buf[:0], ir)
	pos, err := sl.log.Append(wal.TypeCommit, sl.buf)
	if err != nil {
		return err
	}
	delete(sl.subSeg, ir.K)
	sl.commitSeg[ir.K] = pos.Seg
	if sl.builder == nil {
		return nil
	}
	// Mirror the engine's fold so a snapshot can serialize the dispute
	// state without reaching into the (busy) engine.
	sl.digest = wal.Chain(sl.digest, sl.buf)
	if err := sl.builder.Fold(ir); err != nil {
		return err
	}
	sl.lastK = ir.K
	sl.sinceSnap++
	if sl.snapEvery <= 0 || sl.sinceSnap < sl.snapEvery {
		return nil
	}
	sl.sinceSnap = 0
	_, err = sl.writeSnapshotLocked(sl.mirrorSnapshot())
	return err
}

// mirrorSnapshot captures the mirror's state as a snapshot record.
// Callers hold sl.mu and own a non-nil builder.
func (sl *sessionLog) mirrorSnapshot() wal.Snapshot {
	st := sl.builder.State()
	return wal.Snapshot{
		K: st.K, Gen: st.Gen, Disputes: st.Disputes, Faulty: st.Faulty,
		Digest: sl.digest,
	}
}

// writeSnapshotLocked appends a meta + snapshot pair, makes both durable
// and compacts the segments behind them (bounded by uncommitted
// submissions). Callers hold sl.mu.
func (sl *sessionLog) writeSnapshotLocked(s wal.Snapshot) (SnapshotInfo, error) {
	// Re-assert the session identity ahead of the snapshot: the kept
	// tail must still carry a meta record once older segments (including
	// the original one) are compacted away.
	sl.buf = wal.AppendMeta(sl.buf[:0], sl.meta)
	pos, err := sl.log.Append(wal.TypeMeta, sl.buf)
	if err != nil {
		return SnapshotInfo{}, err
	}
	s.Canonicalize()
	sl.buf = wal.AppendSnapshot(sl.buf[:0], s)
	if _, err := sl.log.Append(wal.TypeSnapshot, sl.buf); err != nil {
		return SnapshotInfo{}, err
	}
	if err := sl.log.Sync(); err != nil {
		return SnapshotInfo{}, err
	}
	// Never compact past a submission the engine has yet to execute —
	// recovery must be able to re-feed every uncommitted instance.
	keep := pos
	for _, seg := range sl.subSeg {
		if seg < keep.Seg {
			keep.Seg = seg
		}
	}
	// Nor past a commit above the snapshot's watermark: a floor snapshot
	// trailing the committed watermark (cluster rollback floors) still
	// needs the (floor, watermark] commits to anchor recovery's fold.
	for k, seg := range sl.commitSeg {
		if k <= s.K {
			delete(sl.commitSeg, k)
		} else if seg < keep.Seg {
			keep.Seg = seg
		}
	}
	if err := sl.log.Compact(keep); err != nil {
		return SnapshotInfo{}, err
	}
	sl.snapCount++
	return SnapshotInfo{K: s.K, Gen: s.Gen, Digest: s.Digest}, nil
}

// snapshotNow forces a snapshot of the mirror's current state —
// Session.Snapshot's backend (single-process sessions only).
func (sl *sessionLog) snapshotNow() (SnapshotInfo, error) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.failed != nil {
		return SnapshotInfo{}, sl.failed
	}
	if sl.builder == nil {
		return SnapshotInfo{}, fmt.Errorf("nab: Snapshot: cluster sessions snapshot at rollback floors, not on demand")
	}
	sl.sinceSnap = 0
	return sl.writeSnapshotLocked(sl.mirrorSnapshot())
}

// persistFloor writes a cluster-provided snapshot record (a join base or
// a rollback-floor capture) and compacts behind it. The snapshot content
// comes from the cluster node, which tracks state across rollbacks; the
// session log only frames and compacts.
func (sl *sessionLog) persistFloor(s wal.Snapshot) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.failed != nil {
		return sl.failed
	}
	// Submissions at or below the floor can never be re-executed again;
	// dropping them from the compaction ledger is what lets the log shrink
	// past them (a joiner's pre-floor backlog would otherwise pin its
	// first segment forever).
	for k := range sl.subSeg {
		if k <= s.K {
			delete(sl.subSeg, k)
		}
	}
	_, err := sl.writeSnapshotLocked(s)
	return err
}

// snapshots reports how many snapshot records this session wrote.
func (sl *sessionLog) snapshots() int64 {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.snapCount
}

func (sl *sessionLog) close() error {
	sl.mu.Lock()
	sl.closed = true
	sl.cond.Broadcast()
	sl.mu.Unlock()
	return sl.log.Close()
}

// Snapshot forces a durable engine-state snapshot at the current
// committed watermark and compacts the log behind it — the "drain →
// snapshot" half of a rolling restart: stop submitting, drain Commits,
// call Snapshot, and the next Recover boots from the snapshot with no
// per-instance replay. Needs WithDurability/Recover; cluster sessions
// refuse (their logs snapshot at rollback floors, where the whole
// cluster is provably past the watermark).
func (s *Session) Snapshot() (SnapshotInfo, error) {
	if s.slog == nil {
		return SnapshotInfo{}, fmt.Errorf("nab: Snapshot needs WithDurability or Recover")
	}
	return s.slog.snapshotNow()
}

// recovery is the state replayed out of a WAL at Open.
type recovery struct {
	k        int                    // committed watermark
	tail     int                    // highest logged submission
	foldList []*core.InstanceResult // restore history above the anchor
	replayed []*core.InstanceResult // commits present in the log, for re-delivery
	inputs   map[int][]byte         // logged submissions by instance
	// base is the anchoring snapshot when one survives in the log: the
	// engine restores from it directly instead of folding foldList from
	// instance 1. baseEpoch/baseDigest carry its launch epoch and chain
	// digest for the cluster layer.
	base       *core.SnapshotState
	baseEpoch  uint64
	baseDigest uint64
	// resumed reports a non-empty log: a previous incarnation existed,
	// even if nothing it did survived the crash window. A cluster session
	// must announce a rejoin in that case — its peers may be stalled.
	resumed bool
}

// uncommitted lists the logged-but-uncommitted submissions in order.
func (rec *recovery) uncommitted() ([][]byte, error) {
	var out [][]byte
	for k := rec.k + 1; k <= rec.tail; k++ {
		in, ok := rec.inputs[k]
		if !ok {
			return nil, fmt.Errorf("nab: recover: submission %d missing from the log", k)
		}
		out = append(out, in)
	}
	return out, nil
}

// openSessionLog opens (or resumes) the session WAL and replays it.
func openSessionLog(o *durabilityOptions, fp uint64, node int64, g *graph.Directed, cluster bool) (*sessionLog, *recovery, error) {
	// Submissions sync on the accept path; commit records ride the
	// background group-committed syncer (a commit lost in the batching
	// window re-executes identically on recovery).
	log, err := wal.Open(o.dir, wal.Options{SyncInterval: 5 * time.Millisecond, SegmentBytes: o.segmentBytes})
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*sessionLog, *recovery, error) {
		log.Close()
		return nil, nil, err
	}
	rec := &recovery{inputs: map[int][]byte{}}
	subSegs := map[int]uint64{}    // submission K -> segment, for the compaction floor
	commitSegs := map[int]uint64{} // commit K -> segment, ditto (floor snapshots trail)
	var commitBufs [][]byte        // raw commit payloads, parallel to rec.foldList
	sawMeta, sawCkpt := false, false
	var snap *wal.Snapshot
	firstCommit := 0
	digest := wal.DigestSeed
	empty := true
	err = log.Replay(func(typ byte, payload []byte, pos wal.Pos) error {
		empty = false
		switch typ {
		case wal.TypeMeta:
			// Meta opens a fresh log and is re-asserted at every
			// snapshot, so a compacted tail still carries one (not
			// necessarily first).
			m, err := wal.DecodeMeta(payload)
			if err != nil {
				return err
			}
			if m.Fingerprint != fp {
				return fmt.Errorf("nab: recover: log belongs to a different configuration (fingerprint %x, want %x)", m.Fingerprint, fp)
			}
			if m.Node != node {
				return fmt.Errorf("nab: recover: log belongs to cluster node %d, not %d", m.Node, node)
			}
			sawMeta = true
			return nil
		}
		switch typ {
		case wal.TypeSubmit:
			s, err := wal.DecodeSubmit(payload)
			if err != nil {
				return err
			}
			rec.inputs[s.K] = append([]byte(nil), s.Payload...)
			subSegs[s.K] = pos.Seg
			if s.K > rec.tail {
				rec.tail = s.K
			}
		case wal.TypeCommit:
			ir, err := wal.DecodeCommit(payload)
			if err != nil {
				return err
			}
			if firstCommit == 0 {
				firstCommit = ir.K
				if snap == nil && !sawCkpt {
					// A compacted log's surviving tail starts mid-history;
					// the snapshot (or legacy checkpoint) record carries the
					// folded state of everything dropped before it.
					rec.k = ir.K - 1
				} else if ir.K != rec.k+1 {
					// An anchoring snapshot/checkpoint pins rec.k at its
					// watermark; a first commit that does not extend it means
					// compaction orphaned the (anchor, firstCommit) range.
					return fmt.Errorf("nab: recover: first commit %d does not extend the anchor at %d", ir.K, rec.k)
				}
			}
			if ir.K != rec.k+1 {
				return fmt.Errorf("nab: recover: commit %d out of order (want %d)", ir.K, rec.k+1)
			}
			rec.k = ir.K
			rec.foldList = append(rec.foldList, ir)
			rec.replayed = append(rec.replayed, ir)
			commitBufs = append(commitBufs, append([]byte(nil), payload...))
			commitSegs[ir.K] = pos.Seg
			digest = wal.Chain(digest, payload)
		case wal.TypeCheckpoint:
			if cluster {
				return fmt.Errorf("nab: recover: checkpoint record in a cluster log")
			}
			if snap != nil {
				return fmt.Errorf("nab: recover: legacy checkpoint after a snapshot record")
			}
			cp, err := wal.DecodeCheckpoint(payload)
			if err != nil {
				return err
			}
			if firstCommit == 0 && rec.k == 0 {
				rec.k = cp.K // tail starts at the checkpoint itself
			} else if cp.K != rec.k {
				return fmt.Errorf("nab: recover: checkpoint at %d does not match committed prefix %d", cp.K, rec.k)
			}
			synth := &core.InstanceResult{
				K: cp.K, Phase3: len(cp.Disputes) > 0 || len(cp.Faulty) > 0,
				NewDisputes: cp.Disputes, NewFaulty: cp.Faulty,
			}
			rec.foldList = []*core.InstanceResult{synth}
			sawCkpt = true
		case wal.TypeSnapshot:
			if sawCkpt {
				return fmt.Errorf("nab: recover: snapshot after a legacy checkpoint record")
			}
			s, err := wal.DecodeSnapshot(payload)
			if err != nil {
				return err
			}
			if firstCommit == 0 {
				// No commit survives before it: the snapshot IS the log's
				// base (a compacted log, or a joiner's transferred state).
				if s.K < rec.k {
					return fmt.Errorf("nab: recover: snapshot at %d behind snapshot watermark %d", s.K, rec.k)
				}
				rec.k = s.K
			} else if s.K < firstCommit-1 || s.K > rec.k {
				// A floor snapshot may land after live commits past its
				// watermark (cluster rollbacks); it must still fall inside
				// the surviving committed range to anchor the fold.
				return fmt.Errorf("nab: recover: snapshot at %d outside committed range [%d, %d]", s.K, firstCommit-1, rec.k)
			}
			snap = &s
		default:
			return fmt.Errorf("nab: recover: unknown record type %#x", typ)
		}
		return nil
	})
	if err != nil {
		return fail(err)
	}
	if !empty && !o.resume {
		return fail(fmt.Errorf("nab: WithDurability(%q): log is not empty; use Recover to resume it", o.dir))
	}
	if empty {
		sl := newSessionLog(log, g, cluster, o.snapEvery)
		sl.meta = wal.Meta{Fingerprint: fp, Node: node}
		sl.buf = wal.AppendMeta(sl.buf[:0], sl.meta)
		if _, err := log.AppendSync(wal.TypeMeta, sl.buf); err != nil {
			return fail(err)
		}
		recoveryLog.Debug("wal-created", "dir", o.dir, "cluster", cluster)
		return sl, &recovery{inputs: map[int][]byte{}}, nil
	}
	rec.resumed = true
	if !sawMeta {
		return fail(fmt.Errorf("nab: recover: log carries no meta record"))
	}
	if snap != nil {
		// Anchor the restore at the snapshot: only commits above it fold.
		rec.base = &core.SnapshotState{
			K: snap.K, Gen: snap.Gen, Disputes: snap.Disputes, Faulty: snap.Faulty,
		}
		rec.baseEpoch, rec.baseDigest = snap.Epoch, snap.Digest
		start := 0
		if firstCommit > 0 {
			start = snap.K - (firstCommit - 1)
		}
		rec.foldList = rec.foldList[start:]
		// Chain the anchor's digest over the replayed payload bytes of the
		// commits above it — the same bytes the write path chained — so the
		// lineage digest never depends on decode->re-encode being canonical.
		digest = snap.Digest
		for _, buf := range commitBufs[start:] {
			digest = wal.Chain(digest, buf)
		}
	} else if firstCommit > 1 && !sawCkpt {
		return fail(fmt.Errorf("nab: recover: commits start at %d with no snapshot or checkpoint carrying the prefix", firstCommit))
	}
	recoveryLog.Info("wal-recovered",
		"dir", o.dir, "k", rec.k, "tail", rec.tail,
		"replayed", len(rec.replayed), "snapshot", snap != nil, "checkpointed", sawCkpt, "cluster", cluster)
	// Submissions of committed instances may have been compacted away
	// with their segments; only the uncommitted range must survive
	// (validated by uncommitted()), and sequence numbering continues from
	// the committed watermark regardless.
	if rec.tail < rec.k {
		rec.tail = rec.k
	}
	sl := newSessionLog(log, g, cluster, o.snapEvery)
	sl.meta = wal.Meta{Fingerprint: fp, Node: node}
	sl.maxSubmit = rec.tail
	sl.digest = digest
	sl.lastK = rec.k
	// Seed the compaction floor with the recovered-but-uncommitted
	// backlog: a snapshot fired before those instances commit must not
	// compact away the segments holding their submissions.
	for k := rec.k + 1; k <= rec.tail; k++ {
		if seg, ok := subSegs[k]; ok {
			sl.subSeg[k] = seg
		}
	}
	// Likewise the recovered commits above the anchor: a future floor
	// snapshot below rec.k must not compact away their segments.
	for _, ir := range rec.foldList {
		if seg, ok := commitSegs[ir.K]; ok {
			sl.commitSeg[ir.K] = seg
		}
	}
	// Seed the snapshot mirror exactly the way the engine restores, so
	// mirror and engine stay generation-identical.
	if sl.builder != nil {
		seed := core.SnapshotState{K: rec.k}
		if rec.base != nil {
			seed = *rec.base
		} else if len(rec.foldList) > 0 {
			seed = core.SnapshotState{K: rec.foldList[0].K - 1}
		}
		if _, err := sl.builder.Seed(seed); err != nil {
			return fail(err)
		}
		for _, ir := range rec.foldList {
			if err := sl.builder.Fold(ir); err != nil {
				return fail(err)
			}
		}
	}
	return sl, rec, nil
}
