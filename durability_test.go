package nab_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nab"
)

// oracleRun executes payloads on a fresh lockstep runner — the committed
// sequence every recovery path must reproduce byte for byte.
func oracleRun(t *testing.T, cfg nab.Config, payloads [][]byte) []*nab.InstanceResult {
	t.Helper()
	runner, err := nab.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(payloads)
	if err != nil {
		t.Fatal(err)
	}
	return res.Instances
}

// durableCfg is the shared durability-test configuration: K4 with a
// false alarmer, so dispute control runs and the recovered state must
// carry disputes, exclusions and a diminished instance graph.
func durableCfg() nab.Config {
	return nab.Config{
		Graph: nab.CompleteGraph(4, 1), Source: 1, F: 1, LenBytes: 24, Seed: 11,
		Adversaries: map[nab.NodeID]nab.Adversary{3: nab.FalseAlarmAdversary()},
	}
}

// crashSession opens a durable session, submits all payloads, consumes
// commits until stopAfter have landed, and then tears the session down
// mid-stream (context cancel — the in-process stand-in for kill -9,
// losing all engine state while the WAL survives). Returns the commits
// observed before the crash.
func crashSession(t *testing.T, dir string, cfg nab.Config, payloads [][]byte, stopAfter int, opts ...nab.SessionOption) []*nab.InstanceResult {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess, err := nab.Open(ctx, cfg, append([]nab.SessionOption{nab.Recover(dir)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, p := range payloads {
			if _, err := sess.Submit(ctx, p); err != nil {
				return
			}
		}
	}()
	var seen []*nab.InstanceResult
	for c := range sess.Commits() {
		seen = append(seen, c.Result)
		if len(seen) >= stopAfter {
			cancel()
			break
		}
	}
	sess.Close()
	return seen
}

// recoverAndFinish reopens the WAL, verifies the replayed prefix, feeds
// any payloads the log never accepted, and returns the full committed
// sequence (replayed + live).
func recoverAndFinish(t *testing.T, dir string, cfg nab.Config, payloads [][]byte, opts ...nab.SessionOption) []*nab.InstanceResult {
	t.Helper()
	ctx := context.Background()
	sess, err := nab.Open(ctx, cfg, append([]nab.SessionOption{nab.Recover(dir)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	skip := int(sess.RecoveredSeq())
	if skip == 0 {
		t.Fatal("recovered session reports no restored sequence")
	}
	go func() {
		for _, p := range payloads[skip:] {
			if _, err := sess.Submit(ctx, p); err != nil {
				t.Errorf("submit after recovery: %v", err)
				return
			}
		}
		sess.Drain(ctx)
	}()
	var all []*nab.InstanceResult
	replayedDone := false
	for c := range sess.Commits() {
		if c.Replayed && replayedDone {
			t.Error("replayed commit delivered after live traffic started")
		}
		if !c.Replayed {
			replayedDone = true
		}
		if c.Result.K != len(all)+1 {
			t.Fatalf("commit %d arrived at position %d: recovery duplicated or skipped an instance", c.Result.K, len(all)+1)
		}
		all = append(all, c.Result)
	}
	if err := sess.Err(); err != nil {
		t.Fatalf("recovered session failed: %v", err)
	}
	if res := sess.Result(); res == nil || len(res.Instances) != len(all) {
		t.Errorf("recovered session result incomplete: %v", res)
	}
	return all
}

// assertSameCommits checks the committed sequence byte for byte against
// the oracle.
func assertSameCommits(t *testing.T, got, want []*nab.InstanceResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("committed %d instances, oracle %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.K != w.K || g.Mismatch != w.Mismatch || g.Phase3 != w.Phase3 {
			t.Errorf("instance %d: k/mismatch/phase3 = %d/%v/%v, want %d/%v/%v",
				i+1, g.K, g.Mismatch, g.Phase3, w.K, w.Mismatch, w.Phase3)
		}
		if len(g.Outputs) != len(w.Outputs) {
			t.Errorf("instance %d: %d outputs, want %d", i+1, len(g.Outputs), len(w.Outputs))
		}
		for v, out := range w.Outputs {
			if !bytes.Equal(g.Outputs[v], out) {
				t.Errorf("instance %d: node %d output %x, want %x", i+1, v, g.Outputs[v], out)
			}
		}
	}
}

func TestSessionRecoverPipelined(t *testing.T) {
	cfg := durableCfg()
	payloads := mkPayloads(10, cfg.LenBytes)
	want := oracleRun(t, cfg, payloads)
	dir := t.TempDir()

	pre := crashSession(t, dir, cfg, payloads, 4)
	if len(pre) < 4 {
		t.Fatalf("pre-crash session committed only %d instances", len(pre))
	}
	all := recoverAndFinish(t, dir, cfg, payloads)
	assertSameCommits(t, all, want)
}

func TestSessionRecoverLockstep(t *testing.T) {
	cfg := durableCfg()
	payloads := mkPayloads(8, cfg.LenBytes)
	want := oracleRun(t, cfg, payloads)
	dir := t.TempDir()

	crashSession(t, dir, cfg, payloads, 3, nab.WithLockstep())
	all := recoverAndFinish(t, dir, cfg, payloads, nab.WithLockstep())
	assertSameCommits(t, all, want)
}

// TestSessionRecoverAcrossEngines crashes under the pipelined engine and
// recovers under lockstep: the WAL is engine-agnostic because every
// engine commits byte-identical sequences.
func TestSessionRecoverAcrossEngines(t *testing.T) {
	cfg := durableCfg()
	payloads := mkPayloads(8, cfg.LenBytes)
	want := oracleRun(t, cfg, payloads)
	dir := t.TempDir()

	crashSession(t, dir, cfg, payloads, 3)
	all := recoverAndFinish(t, dir, cfg, payloads, nab.WithLockstep())
	assertSameCommits(t, all, want)
}

// TestSessionRecoverTornTail chops bytes off the live WAL segment —
// a record torn mid-write by the crash — and recovery must drop the torn
// record and re-execute it instead of mis-replaying.
func TestSessionRecoverTornTail(t *testing.T) {
	cfg := durableCfg()
	payloads := mkPayloads(8, cfg.LenBytes)
	want := oracleRun(t, cfg, payloads)
	dir := t.TempDir()

	crashSession(t, dir, cfg, payloads, 4)
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	last := segs[len(segs)-1]
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	all := recoverAndFinish(t, dir, cfg, payloads)
	assertSameCommits(t, all, want)
}

// TestSessionCheckpointRecovery runs with an aggressive checkpoint
// interval so recovery restores through a dispute-state checkpoint (and
// the synthetic fold it decodes to) rather than the raw commit history.
func TestSessionCheckpointRecovery(t *testing.T) {
	cfg := durableCfg()
	payloads := mkPayloads(10, cfg.LenBytes)
	want := oracleRun(t, cfg, payloads)
	dir := t.TempDir()

	crashSession(t, dir, cfg, payloads, 6, nab.WithCheckpointInterval(2))
	all := recoverAndFinish(t, dir, cfg, payloads, nab.WithCheckpointInterval(2))
	assertSameCommits(t, all, want)

	// A second recovery after the clean drain replays the full sequence.
	sess, err := nab.Open(context.Background(), cfg, nab.Recover(dir), nab.WithCheckpointInterval(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := int(sess.RecoveredSeq()); got != len(payloads) {
		t.Errorf("second recovery restored seq %d, want %d", got, len(payloads))
	}
	sess.Close()
}

// TestSessionRecoverRacingClose hammers the teardown path: Close lands
// while recovery replay and live commits are still streaming, at a
// different point every iteration. No schedule may race (the CI -race
// variant is the point), deadlock, or corrupt the log — a final clean
// recovery must still reproduce the oracle byte for byte.
func TestSessionRecoverRacingClose(t *testing.T) {
	cfg := durableCfg()
	payloads := mkPayloads(12, cfg.LenBytes)
	want := oracleRun(t, cfg, payloads)
	dir := t.TempDir()
	crashSession(t, dir, cfg, payloads, 4)

	ctx := context.Background()
	for i := 0; i < 12; i++ {
		sess, err := nab.Open(ctx, cfg, nab.Recover(dir))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		go func() {
			skip := int(sess.RecoveredSeq())
			for _, p := range payloads[skip:] {
				if _, err := sess.Submit(ctx, p); err != nil {
					return // the session is closing under us; expected
				}
			}
		}()
		closed := make(chan struct{})
		fire := func() {
			go func() {
				defer close(closed)
				sess.Close()
			}()
		}
		// Iterations sweep the close point from before the first commit
		// deep into the replayed prefix (at least 4 instances replay).
		stop := i % 5
		if stop == 0 {
			fire()
		}
		n := 0
		for range sess.Commits() {
			n++
			if n == stop {
				fire()
			}
		}
		select {
		case <-closed:
		case <-time.After(time.Minute):
			t.Fatalf("iteration %d: Close never returned", i)
		}
	}

	all := recoverAndFinish(t, dir, cfg, payloads)
	assertSameCommits(t, all, want)
}

func TestDurabilityGuards(t *testing.T) {
	cfg := durableCfg()
	dir := t.TempDir()
	payloads := mkPayloads(4, cfg.LenBytes)
	crashSession(t, dir, cfg, payloads, 2)

	// A fresh WithDurability over a used log must refuse.
	if _, err := nab.Open(context.Background(), cfg, nab.WithDurability(dir)); err == nil ||
		!strings.Contains(err.Error(), "Recover") {
		t.Errorf("WithDurability over a non-empty log: err = %v", err)
	}
	// A different configuration must be rejected by the fingerprint.
	other := cfg
	other.Seed = 999
	if _, err := nab.Open(context.Background(), other, nab.Recover(dir)); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("recover under a different config: err = %v", err)
	}
	// A different adversary assignment is a different configuration too:
	// who misbehaves is part of the committed sequence.
	noAdv := cfg
	noAdv.Adversaries = nil
	if _, err := nab.Open(context.Background(), noAdv, nab.Recover(dir)); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("recover under a different adversary assignment: err = %v", err)
	}
}
