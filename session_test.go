package nab_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"nab"
)

// mkPayloads builds q deterministic distinct payloads.
func mkPayloads(q, lenBytes int) [][]byte {
	out := make([][]byte, q)
	for i := range out {
		out[i] = make([]byte, lenBytes)
		for j := range out[i] {
			out[i][j] = byte(i*31 + j*7 + 1)
		}
	}
	return out
}

// feedAndCollect drives one session over payloads: a producer goroutine
// submits them all and drains, while the caller's side collects every
// commit, asserting Seq-ordered delivery. Returns the committed results
// and the final dispute set.
func feedAndCollect(t *testing.T, sess *nab.Session, payloads [][]byte) ([]*nab.InstanceResult, string) {
	t.Helper()
	ctx := context.Background()
	go func() {
		for _, p := range payloads {
			if _, err := sess.Submit(ctx, p); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
		sess.Drain(ctx)
	}()
	var results []*nab.InstanceResult
	for c := range sess.Commits() {
		if int(c.Seq) != len(results)+1 {
			t.Errorf("commit out of order: seq %d at position %d", c.Seq, len(results)+1)
		}
		if c.Result.K != int(c.Seq) {
			t.Errorf("commit seq %d carries instance %d", c.Seq, c.Result.K)
		}
		results = append(results, c.Result)
	}
	if err := sess.Err(); err != nil {
		t.Fatalf("session error: %v", err)
	}
	if res := sess.Result(); res == nil || len(res.Instances) != len(payloads) {
		t.Errorf("session result missing or incomplete")
	}
	return results, sess.Disputes().String()
}

// sessionDiffConfig is one differential cell: a shared cluster config
// whose core configuration drives the lockstep and pipelined engines too.
func sessionDiffConfig(t *testing.T, g *nab.Graph, source nab.NodeID, f, procs int, advs map[nab.NodeID]string) (*nab.ClusterConfig, *nab.ClusterReservation) {
	t.Helper()
	nodes := g.Nodes()
	rsv, err := nab.ReserveClusterAddrs(procs + 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsv.Close() })
	addrs := rsv.Addrs()
	cfg := &nab.ClusterConfig{
		Topology: g.Marshal(), Source: source, F: f,
		LenBytes: 24, Seed: 7, Window: 4,
		CtrlAddr: addrs[procs],
	}
	for i, v := range nodes {
		cfg.Nodes = append(cfg.Nodes, nab.ClusterNodeSpec{ID: v, Addr: addrs[i%procs], Adversary: advs[v]})
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg, rsv
}

// TestSessionDifferentialEngines is the redesign's acceptance invariant:
// one Session API, three engines, identical payload sequences — the
// lockstep adapter, the pipelined runtime at W=4 and a 3-process TCP
// cluster must commit byte-identical outputs with identical mismatch
// schedules and identical final dispute sets.
func TestSessionDifferentialEngines(t *testing.T) {
	circ, err := nab.CirculantGraph(9, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cells := []struct {
		name   string
		g      *nab.Graph
		source nab.NodeID
		f      int
		advs   map[nab.NodeID]string
	}{
		// Alarm + flip on K7 forces dispute control to keep running after
		// a node is proven faulty — the deepest control-plane path.
		{"K7/AlarmThenFlip", nab.CompleteGraph(7, 2), 1, 2, map[nab.NodeID]string{3: "alarm", 5: "flip"}},
		// The seeded (instance-scoped) random adversary is the only
		// randomized form the matrix uses: deterministic at any window.
		{"Circulant9/SeededRandom", circ, 1, 1, map[nab.NodeID]string{4: "random:99"}},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			const procs = 3
			ccfg, rsv := sessionDiffConfig(t, cell.g, cell.source, cell.f, procs, cell.advs)
			payloads := mkPayloads(5, ccfg.LenBytes)
			ctx := context.Background()

			coreCfg, err := ccfg.CoreConfig()
			if err != nil {
				t.Fatal(err)
			}

			lockSess, err := nab.Open(ctx, coreCfg, nab.WithLockstep())
			if err != nil {
				t.Fatal(err)
			}
			defer lockSess.Close()
			want, wantDisputes := feedAndCollect(t, lockSess, payloads)

			coreCfg2, err := ccfg.CoreConfig() // fresh adversary state
			if err != nil {
				t.Fatal(err)
			}
			pipeSess, err := nab.Open(ctx, coreCfg2, nab.WithWindow(4))
			if err != nil {
				t.Fatal(err)
			}
			defer pipeSess.Close()
			pipe, pipeDisputes := feedAndCollect(t, pipeSess, payloads)
			if pipeDisputes != wantDisputes {
				t.Errorf("pipelined dispute set %q, want %q", pipeDisputes, wantDisputes)
			}
			for i, w := range want {
				g := pipe[i]
				if g.Mismatch != w.Mismatch || g.Phase3 != w.Phase3 {
					t.Errorf("pipelined instance %d: mismatch/phase3 = %v/%v, want %v/%v",
						i+1, g.Mismatch, g.Phase3, w.Mismatch, w.Phase3)
				}
				for v, out := range w.Outputs {
					if !bytes.Equal(g.Outputs[v], out) {
						t.Errorf("pipelined instance %d: node %d output %x, want %x", i+1, v, g.Outputs[v], out)
					}
				}
			}

			// One cluster session per hosting process, all fed the same
			// payload stream; local views merge into the full output map.
			leads := map[string]nab.NodeID{}
			var order []string
			for _, ns := range ccfg.Nodes {
				if _, ok := leads[ns.Addr]; !ok {
					leads[ns.Addr] = ns.ID
					order = append(order, ns.Addr)
				}
			}
			type procView struct {
				results  []*nab.InstanceResult
				disputes string
			}
			views := make([]procView, len(order))
			var wg sync.WaitGroup
			for i, addr := range order {
				wg.Add(1)
				go func(i int, lead nab.NodeID) {
					defer wg.Done()
					sess, err := nab.Open(ctx, nab.Config{}, nab.WithCluster(ccfg, lead, nab.ClusterOptions{
						BootTimeout: 30 * time.Second, Reservation: rsv,
					}))
					if err != nil {
						t.Errorf("process %d: %v", i, err)
						return
					}
					defer sess.Close()
					rs, ds := feedAndCollect(t, sess, payloads)
					views[i] = procView{results: rs, disputes: ds}
				}(i, leads[addr])
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			for pi, view := range views {
				if len(view.results) != len(want) {
					t.Fatalf("process %d committed %d instances, want %d", pi, len(view.results), len(want))
				}
				if view.disputes != wantDisputes {
					t.Errorf("process %d dispute set %q, want %q", pi, view.disputes, wantDisputes)
				}
			}
			for i, w := range want {
				merged := map[nab.NodeID][]byte{}
				for pi, view := range views {
					g := view.results[i]
					if g.Mismatch != w.Mismatch || g.Phase3 != w.Phase3 {
						t.Errorf("process %d instance %d: mismatch/phase3 = %v/%v, want %v/%v",
							pi, i+1, g.Mismatch, g.Phase3, w.Mismatch, w.Phase3)
					}
					for v, out := range g.Outputs {
						if prev, dup := merged[v]; dup && !bytes.Equal(prev, out) {
							t.Errorf("instance %d: node %d output reported twice with different values", i+1, v)
						}
						merged[v] = out
					}
				}
				if len(merged) != len(w.Outputs) {
					t.Errorf("instance %d: cluster committed %d outputs, lockstep %d", i+1, len(merged), len(w.Outputs))
				}
				for v, out := range w.Outputs {
					if !bytes.Equal(merged[v], out) {
						t.Errorf("instance %d: node %d output %x, want %x", i+1, v, merged[v], out)
					}
				}
			}
		})
	}
}

// settleGoroutines fails the test if the goroutine count does not return
// to (near) base within the deadline — the no-leak check for canceled and
// closed sessions.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 { // tolerate runtime housekeeping goroutines
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, base %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSessionCancelMidDispute cancels a session while dispute control is
// in flight (alarm + flip keep Phase 3 busy on K7): the session must end
// with context.Canceled, close its commit stream, tear down without
// leaking goroutines, and refuse later submissions.
func TestSessionCancelMidDispute(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := nab.Config{
		Graph: nab.CompleteGraph(7, 2), Source: 1, F: 2, LenBytes: 24, Seed: 7,
		Adversaries: map[nab.NodeID]nab.Adversary{
			3: nab.FalseAlarmAdversary(),
			5: nab.BlockFlipperAdversary(),
		},
	}
	sess, err := nab.Open(ctx, cfg, nab.WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	payload := mkPayloads(1, cfg.LenBytes)[0]
	go func() {
		for {
			if _, err := sess.Submit(ctx, payload); err != nil {
				return // cancellation surfaced to the producer
			}
		}
	}()
	// The first commit of this scenario already ran dispute control; with
	// W=4 more speculative executions are mid-flight when we cancel.
	sawDispute := false
	for i := 0; i < 2; i++ {
		c, ok := <-sess.Commits()
		if !ok {
			t.Fatal("commit stream ended before cancellation")
		}
		sawDispute = sawDispute || c.Result.Phase3
	}
	if !sawDispute {
		t.Fatal("scenario did not exercise dispute control; adjust adversaries")
	}
	cancel()
	for range sess.Commits() {
		// drain whatever committed before the cancel landed
	}
	if err := sess.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("session error = %v, want context.Canceled", err)
	}
	if _, err := sess.Submit(context.Background(), payload); !errors.Is(err, nab.ErrSessionClosed) {
		t.Errorf("submit after cancel = %v, want ErrSessionClosed", err)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("close after cancel: %v", err)
	}
	settleGoroutines(t, base)
}

// TestSessionBackpressure checks the consumer-to-producer stall chain: a
// consumer that stops reading Commits() fills the commit buffer, the
// pipeline, and the submission queue, until Submit blocks. Consuming
// again releases it.
func TestSessionBackpressure(t *testing.T) {
	ctx := context.Background()
	cfg := nab.Config{Graph: nab.CompleteGraph(4, 1), Source: 1, F: 1, LenBytes: 8, Seed: 7}
	sess, err := nab.Open(ctx, cfg, nab.WithWindow(1), nab.WithCommitBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	payload := mkPayloads(1, cfg.LenBytes)[0]

	// Nobody consumes: submission must stall within a few accepted
	// payloads (commit buffer + window + submission queue).
	accepted, blocked := 0, false
	for i := 0; i < 16 && !blocked; i++ {
		sctx, scancel := context.WithTimeout(ctx, 200*time.Millisecond)
		_, err := sess.Submit(sctx, payload)
		scancel()
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, context.DeadlineExceeded):
			blocked = true
		default:
			t.Fatalf("submit: %v", err)
		}
	}
	if !blocked {
		t.Fatalf("submit never blocked after %d accepted payloads", accepted)
	}

	// A consumer appears: the stalled pipeline moves again and one more
	// submission goes through.
	got := make(chan int)
	go func() {
		n := 0
		for range sess.Commits() {
			n++
		}
		got <- n
	}()
	sctx, scancel := context.WithTimeout(ctx, 30*time.Second)
	defer scancel()
	if _, err := sess.Submit(sctx, payload); err != nil {
		t.Fatalf("submit after consumer resumed: %v", err)
	}
	accepted++
	if err := sess.Drain(sctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := <-got; n != accepted {
		t.Errorf("consumed %d commits, want %d", n, accepted)
	}
}

// TestSessionLifecycleErrors covers the API edges: submit after drain,
// double close, submit after close, payload validation and option
// conflicts.
func TestSessionLifecycleErrors(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx := context.Background()
	cfg := nab.Config{Graph: nab.CompleteGraph(4, 1), Source: 1, F: 1, LenBytes: 8, Seed: 7}

	sess, err := nab.Open(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Submit(ctx, []byte("nope")); err == nil {
		t.Error("submit accepted a wrong-length payload")
	}
	seq, err := sess.Submit(ctx, mkPayloads(1, cfg.LenBytes)[0])
	if err != nil || seq != 1 {
		t.Fatalf("submit = (%d, %v), want (1, nil)", seq, err)
	}
	if err := sess.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain has completed, so the session has ended: terminal error.
	if _, err := sess.Submit(ctx, mkPayloads(1, cfg.LenBytes)[0]); !errors.Is(err, nab.ErrSessionClosed) {
		t.Errorf("submit after completed drain = %v, want ErrSessionClosed", err)
	}
	if n := len(sess.Commits()); n != 1 {
		t.Errorf("drained session holds %d commits, want 1", n)
	}
	if err := sess.Err(); err != nil {
		t.Errorf("clean drain left error %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := sess.Err(); err != nil {
		t.Errorf("close after clean drain left error %v", err)
	}
	settleGoroutines(t, base)

	// Abortive close (no drain): the engine is torn down mid-stream.
	sess2, err := nab.Open(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess2.Close(); err != nil {
		t.Errorf("abortive close: %v", err)
	}
	if _, err := sess2.Submit(ctx, mkPayloads(1, cfg.LenBytes)[0]); !errors.Is(err, nab.ErrSessionClosed) {
		t.Errorf("submit after close = %v, want ErrSessionClosed", err)
	}
	settleGoroutines(t, base)

	// Option conflicts fail fast.
	for name, open := range map[string]func() (*nab.Session, error){
		"lockstep+window": func() (*nab.Session, error) {
			return nab.Open(ctx, cfg, nab.WithLockstep(), nab.WithWindow(4))
		},
		"cluster+adversary": func() (*nab.Session, error) {
			return nab.Open(ctx, nab.Config{}, nab.WithCluster(&nab.ClusterConfig{}, 1, nab.ClusterOptions{}),
				nab.WithAdversary(3, nab.CrashAdversary()))
		},
		"bad commit buffer": func() (*nab.Session, error) {
			return nab.Open(ctx, cfg, nab.WithCommitBuffer(-1))
		},
	} {
		if s, err := open(); err == nil {
			s.Close()
			t.Errorf("%s: conflicting options accepted", name)
		}
	}
}

// TestSessionLockstepMatchesRunner pins the lockstep adapter to the
// original Runner: same seeds, same payloads, same outputs.
func TestSessionLockstepMatchesRunner(t *testing.T) {
	cfg := nab.Config{Graph: nab.CompleteGraph(4, 2), Source: 1, F: 1, LenBytes: 16, Seed: 3,
		Adversaries: map[nab.NodeID]nab.Adversary{4: nab.SeededRandomAdversary(99)}}
	payloads := mkPayloads(4, cfg.LenBytes)

	runner, err := nab.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := runner.Run(payloads)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Adversaries = map[nab.NodeID]nab.Adversary{4: nab.SeededRandomAdversary(99)}
	sess, err := nab.Open(context.Background(), cfg, nab.WithLockstep())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, _ := feedAndCollect(t, sess, payloads)
	for i, w := range want.Instances {
		for v, out := range w.Outputs {
			if !bytes.Equal(got[i].Outputs[v], out) {
				t.Errorf("instance %d: node %d output %x, want %x", i+1, v, got[i].Outputs[v], out)
			}
		}
	}
}

func ExampleOpen() {
	g := nab.CompleteGraph(4, 1)
	ctx := context.Background()
	sess, err := nab.Open(ctx, nab.Config{Graph: g, Source: 1, F: 1, LenBytes: 8, Seed: 1},
		nab.WithWindow(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer sess.Close()
	go func() {
		for _, p := range [][]byte{[]byte("payload1"), []byte("payload2")} {
			if _, err := sess.Submit(ctx, p); err != nil {
				return
			}
		}
		sess.Drain(ctx)
	}()
	for c := range sess.Commits() {
		fmt.Printf("instance %d: %s\n", c.Seq, c.Result.Outputs[2])
	}
	// Output:
	// instance 1: payload1
	// instance 2: payload2
}

// TestSessionCloseReleasesBlockedSubmit pins the teardown ordering:
// Close must cancel the engine *before* waiting for the submission
// stream, so a producer blocked on backpressure (holding the submit
// lock) is released rather than deadlocking Close.
func TestSessionCloseReleasesBlockedSubmit(t *testing.T) {
	ctx := context.Background()
	cfg := nab.Config{Graph: nab.CompleteGraph(4, 1), Source: 1, F: 1, LenBytes: 8, Seed: 7}
	sess, err := nab.Open(ctx, cfg, nab.WithWindow(1), nab.WithCommitBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	payload := mkPayloads(1, cfg.LenBytes)[0]
	producerErr := make(chan error, 1)
	go func() {
		for {
			if _, err := sess.Submit(ctx, payload); err != nil {
				producerErr <- err
				return
			}
		}
	}()
	time.Sleep(300 * time.Millisecond) // nobody consumes: the producer is now blocked

	closed := make(chan error, 1)
	go func() { closed <- sess.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Errorf("close: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Close deadlocked behind a blocked Submit")
	}
	select {
	case err := <-producerErr:
		if err == nil {
			t.Error("blocked Submit returned nil after Close")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("blocked Submit never released")
	}
}
