package nab

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"nab/internal/adversary"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/topo"
	"nab/internal/wal"
)

// TestRecoveryAcrossSegmentCompaction forces the full compaction
// machinery through a session: tiny WAL segments rotate constantly, an
// aggressive checkpoint interval compacts the log mid-run (dropping the
// original meta record's segment and the committed prefix's submissions),
// and recovery must still restore through the checkpoint — meta
// re-asserted ahead of it, the synthetic dispute fold applied, and the
// resumed tail byte-identical to an uninterrupted run.
func TestRecoveryAcrossSegmentCompaction(t *testing.T) {
	cfg := Config{
		Graph: topo.CompleteBi(4, 1), Source: 1, F: 1, LenBytes: 24, Seed: 11,
		Adversaries: map[graph.NodeID]Adversary{3: adversary.FalseAlarm{}},
	}
	const q = 24
	payloads := make([][]byte, q)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, cfg.LenBytes)
	}
	oracle, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Run(payloads)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	tiny := func(o *sessionOptions) {
		o.durability = &durabilityOptions{dir: dir, resume: true, snapEvery: 3, segmentBytes: 512}
	}
	ctx := context.Background()

	// runSome drives the session up to payload n and returns the commits
	// delivered this incarnation. After a compaction the replayed prefix
	// starts mid-history, so continuity is checked from the first
	// delivered K, not from 1.
	runSome := func(n int) []*InstanceResult {
		sess, err := Open(ctx, cfg, WithLockstep(), tiny)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		skip := int(sess.RecoveredSeq())
		go func() {
			for _, p := range payloads[skip:n] {
				if _, err := sess.Submit(ctx, p); err != nil {
					return
				}
			}
			sess.Drain(ctx)
		}()
		var got []*InstanceResult
		for c := range sess.Commits() {
			if len(got) > 0 && c.Result.K != got[len(got)-1].K+1 {
				t.Fatalf("commit %d after %d: duplicated or skipped", c.Result.K, got[len(got)-1].K)
			}
			got = append(got, c.Result)
		}
		if err := sess.Err(); err != nil {
			t.Fatalf("session failed: %v", err)
		}
		if last := got[len(got)-1].K; last != n {
			t.Fatalf("incarnation ended at instance %d, want %d", last, n)
		}
		return got
	}

	// First incarnation: run 15 of 24, drain cleanly (checkpoints at 3,
	// 6, 9, 12, 15 — several compactions over 512-byte segments).
	runSome(15)
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	// The first segment must be gone: compaction crossed segments.
	if filepath.Base(segs[0]) == "wal-0000000000000001.seg" {
		t.Fatalf("compaction never dropped the first segment (%d segments: %v)", len(segs), segs)
	}

	// Second incarnation resumes through the checkpoint and finishes;
	// every delivered commit must match the oracle byte for byte.
	for _, g := range runSome(q) {
		w := want.Instances[g.K-1]
		if g.Mismatch != w.Mismatch || g.Phase3 != w.Phase3 {
			t.Errorf("instance %d: schedule diverged after compacted recovery", w.K)
		}
		for v, out := range w.Outputs {
			if !bytes.Equal(g.Outputs[v], out) {
				t.Errorf("instance %d: node %d output diverged", w.K, v)
			}
		}
	}

	// The recovered dispute state must match the oracle's.
	sess, err := Open(ctx, cfg, WithLockstep(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sess.Disputes().String(), oracle.Disputes().String(); got != want {
		t.Errorf("recovered dispute set %q, want %q", got, want)
	}
	sess.Close()
}

// TestRecoverAnchorGapErrors pins recovery's handling of a log whose
// snapshot anchor is not extended by its first surviving commit — the
// shape a buggy compaction leaves when it orphans the (anchor, commit)
// range. A contiguous tail must recover; a gapped one must be a recover
// error, never a slice-bound panic.
func TestRecoverAnchorGapErrors(t *testing.T) {
	g := topo.CompleteBi(4, 1)
	const fp, node = uint64(42), int64(3)

	build := func(firstK int) string {
		dir := t.TempDir()
		log, err := wal.Open(dir, wal.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := log.Append(wal.TypeMeta, wal.AppendMeta(nil, wal.Meta{Fingerprint: fp, Node: node})); err != nil {
			t.Fatal(err)
		}
		snap := wal.Snapshot{K: 4, Digest: wal.DigestSeed}
		snap.Canonicalize()
		if _, err := log.Append(wal.TypeSnapshot, wal.AppendSnapshot(nil, snap)); err != nil {
			t.Fatal(err)
		}
		if _, err := log.Append(wal.TypeCommit, wal.AppendCommit(nil, &core.InstanceResult{K: firstK})); err != nil {
			t.Fatal(err)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	sl, rec, err := openSessionLog(&durabilityOptions{dir: build(5), resume: true}, fp, node, g, true)
	if err != nil {
		t.Fatalf("contiguous anchored tail failed to recover: %v", err)
	}
	if rec.k != 5 || rec.base == nil || rec.base.K != 4 || len(rec.foldList) != 1 {
		t.Fatalf("contiguous recovery: k=%d base=%v folds=%d, want k=5 base.K=4 folds=1", rec.k, rec.base, len(rec.foldList))
	}
	sl.close()

	if _, _, err := openSessionLog(&durabilityOptions{dir: build(6), resume: true}, fp, node, g, true); err == nil || !strings.Contains(err.Error(), "does not extend the anchor") {
		t.Fatalf("orphaned (anchor, commit) range recovered: err = %v", err)
	}
}

// TestFloorSnapshotKeepsCommitTail drives a cluster-mode session log the
// way a rollback floor does — a snapshot persisted well behind the
// committed watermark — over tiny rotating segments. Compaction must keep
// every segment holding a commit above the floor (dropping the prefix
// below it), and recovery must restore the full (floor, watermark] fold
// with the lineage digest chained from the floor over the replayed
// payload bytes.
func TestFloorSnapshotKeepsCommitTail(t *testing.T) {
	g := topo.CompleteBi(4, 1)
	const fp, node = uint64(7), int64(2)
	const floorK, w = 4, 12
	dir := t.TempDir()
	o := &durabilityOptions{dir: dir, resume: true, segmentBytes: 256}
	sl, _, err := openSessionLog(o, fp, node, g, true)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xab}, 64)
	for k := 1; k <= w; k++ {
		if err := sl.appendSubmit(k, payload); err != nil {
			t.Fatal(err)
		}
		if err := sl.logCommit(&core.InstanceResult{K: k}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sl.persistFloor(wal.Snapshot{K: floorK, Digest: 0xfee1}); err != nil {
		t.Fatal(err)
	}
	if err := sl.close(); err != nil {
		t.Fatal(err)
	}

	// The floor did compact the prefix: the original first segment is gone.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	if filepath.Base(segs[0]) == "wal-0000000000000001.seg" {
		t.Errorf("floor snapshot never compacted the pre-floor prefix (%d segments)", len(segs))
	}

	sl2, rec, err := openSessionLog(o, fp, node, g, true)
	if err != nil {
		t.Fatalf("recovery after a trailing floor snapshot: %v", err)
	}
	defer sl2.close()
	if rec.base == nil || rec.base.K != floorK || rec.k != w {
		t.Fatalf("recovered base=%v k=%d, want base.K=%d k=%d", rec.base, rec.k, floorK, w)
	}
	for i, ir := range rec.foldList {
		if ir.K != floorK+1+i {
			t.Fatalf("fold %d carries instance %d, want %d", i, ir.K, floorK+1+i)
		}
	}
	if len(rec.foldList) != w-floorK {
		t.Fatalf("recovered %d folds, want %d", len(rec.foldList), w-floorK)
	}
	want := uint64(0xfee1)
	for k := floorK + 1; k <= w; k++ {
		want = wal.Chain(want, wal.AppendCommit(nil, &core.InstanceResult{K: k}))
	}
	if sl2.digest != want {
		t.Errorf("recovered lineage digest %x, want %x (floor digest chained over the replayed tail)", sl2.digest, want)
	}
}

// TestSnapshotCompactionBoundsLog pins the point of snapshot-anchored
// compaction: the on-disk log size is a function of the snapshot interval
// and segment size, NOT of stream length. Tripling the workload must not
// grow the surviving segment count — without compaction it would triple.
func TestSnapshotCompactionBoundsLog(t *testing.T) {
	run := func(q int) int {
		cfg := Config{Graph: topo.CompleteBi(4, 1), Source: 1, F: 1, LenBytes: 24, Seed: 11}
		payloads := make([][]byte, q)
		for i := range payloads {
			payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, cfg.LenBytes)
		}
		dir := t.TempDir()
		tiny := func(o *sessionOptions) {
			o.durability = &durabilityOptions{dir: dir, resume: true, snapEvery: 4, segmentBytes: 256}
		}
		ctx := context.Background()
		sess, err := Open(ctx, cfg, WithLockstep(), tiny)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		go func() {
			for _, p := range payloads {
				if _, err := sess.Submit(ctx, p); err != nil {
					return
				}
			}
			sess.Drain(ctx)
		}()
		for range sess.Commits() {
		}
		if err := sess.Err(); err != nil {
			t.Fatalf("q=%d session failed: %v", q, err)
		}
		if n := sess.Snapshots(); n < int64(q/4) {
			t.Errorf("q=%d: session wrote %d snapshots, want >= %d at interval 4", q, n, q/4)
		}
		sess.Close()
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("q=%d: no segments: %v", q, err)
		}
		return len(segs)
	}
	short, long := run(32), run(96)
	t.Logf("32 instances leave %d segments, 96 leave %d", short, long)
	if long > short+1 {
		t.Errorf("log grew with history (%d segments at q=32, %d at q=96); compaction is not bounding the on-disk size", short, long)
	}
}
