// Benchmark harness: one benchmark per reproduced paper artifact (see
// DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// numbers). Each benchmark regenerates the corresponding experiment table;
// run cmd/nabexp to print the tables themselves.
package nab_test

import (
	"io"
	"testing"

	"nab"
	"nab/internal/exp"
)

const benchSeed = 2012

// BenchmarkE1_Fig1Mincuts regenerates the Figure 1 worked example
// (per-node mincuts, gamma, Omega_k, U_k).
func BenchmarkE1_Fig1Mincuts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.E1Fig1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_Fig2TreePacking regenerates the Figure 2 spanning-structure
// constructions (directed arborescence packing, undirected conversion and
// tree packing).
func BenchmarkE2_Fig2TreePacking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.E2Fig2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_Theorem1Soundness measures the random-coding-matrix failure
// rate against the Theorem 1 bound across symbol widths.
func BenchmarkE3_Theorem1Soundness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.E3Theorem1(io.Discard, 100, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_ThroughputVsCapacity measures adversarial amortized NAB
// throughput against the Theorem 2 capacity upper bound on six networks,
// reporting the worst measured/UB fraction (Theorem 3 guarantees >= 1/3,
// or 1/2 when gamma* <= rho*, as L and Q grow).
func BenchmarkE4_ThroughputVsCapacity(b *testing.B) {
	worst := 1.0
	for i := 0; i < b.N; i++ {
		rows, err := exp.E4ThroughputVsCapacity(io.Discard, 0, 10, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if frac := r.Asymptotic / r.CapacityUB; frac < worst {
				worst = frac
			}
		}
	}
	b.ReportMetric(worst, "worst-asym/UB")
}

// BenchmarkE5_Pipelining regenerates the Figure 3 / Appendix D pipelining
// comparison on multi-hop circulants, reporting the largest speedup.
func BenchmarkE5_Pipelining(b *testing.B) {
	speedup := 0.0
	for i := 0; i < b.N; i++ {
		rows, err := exp.E5Pipelining(io.Discard, 0, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if s := r.Unpipelined / r.Pipelined; s > speedup {
				speedup = s
			}
		}
	}
	b.ReportMetric(speedup, "max-pipeline-speedup")
}

// BenchmarkE6_DisputeAmortization sweeps Q under persistent adversaries,
// reporting the final dispute-control time share (which must vanish).
func BenchmarkE6_DisputeAmortization(b *testing.B) {
	share := 0.0
	for i := 0; i < b.N; i++ {
		rows, err := exp.E6Amortization(io.Discard, 128, []int{1, 16, 256}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		share = rows[len(rows)-1].DisputeShare
	}
	b.ReportMetric(share, "phase3-share@Q=256")
}

// BenchmarkE7_BaselineComparison sweeps fat-link capacity on the
// one-thin-link clique, reporting the final NAB/EIG throughput ratio.
func BenchmarkE7_BaselineComparison(b *testing.B) {
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		rows, err := exp.E7Baselines(io.Discard, 1024, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[len(rows)-1].Ratio
	}
	b.ReportMetric(ratio, "NAB/EIG@fat=32")
}

// BenchmarkE8_CorrectnessSweep fuzzes topologies, fault placements and
// strategies; any agreement/validity/bound violation fails the benchmark.
func BenchmarkE8_CorrectnessSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.E8Correctness(io.Discard, 10, 8, benchSeed+int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Rho sweeps the equality-check parameter.
func BenchmarkAblation_Rho(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationRho(io.Discard, 64, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Packing compares full gamma-tree Phase 1 against
// crippled packings.
func BenchmarkAblation_Packing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationPacking(io.Discard, 64, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_RelayPaths sweeps the disjoint-path count above 2f+1.
func BenchmarkAblation_RelayPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationRelayPaths(io.Discard, 16, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNABInstance measures one fault-free end-to-end instance on K7.
func BenchmarkNABInstance(b *testing.B) {
	runner, err := nab.NewRunner(nab.Config{
		Graph: nab.CompleteGraph(7, 2), Source: 1, F: 2, LenBytes: 64, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	in := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunInstance(in); err != nil {
			b.Fatal(err)
		}
	}
}
