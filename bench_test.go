// Benchmark harness: one benchmark per reproduced paper artifact plus the
// lockstep-vs-pipelined runtime comparison (see EXPERIMENTS.md's
// experiment index for the recorded numbers). Each experiment benchmark
// regenerates the corresponding table; run cmd/nabexp to print the tables
// themselves and tools/bench2json to refresh BENCH_pipeline.json.
package nab_test

import (
	"io"
	"testing"
	"time"

	"nab"
	"nab/internal/exp"
)

const benchSeed = 2012

// BenchmarkE1_Fig1Mincuts regenerates the Figure 1 worked example
// (per-node mincuts, gamma, Omega_k, U_k).
func BenchmarkE1_Fig1Mincuts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.E1Fig1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_Fig2TreePacking regenerates the Figure 2 spanning-structure
// constructions (directed arborescence packing, undirected conversion and
// tree packing).
func BenchmarkE2_Fig2TreePacking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.E2Fig2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_Theorem1Soundness measures the random-coding-matrix failure
// rate against the Theorem 1 bound across symbol widths.
func BenchmarkE3_Theorem1Soundness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.E3Theorem1(io.Discard, 100, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_ThroughputVsCapacity measures adversarial amortized NAB
// throughput against the Theorem 2 capacity upper bound on six networks,
// reporting the worst measured/UB fraction (Theorem 3 guarantees >= 1/3,
// or 1/2 when gamma* <= rho*, as L and Q grow).
func BenchmarkE4_ThroughputVsCapacity(b *testing.B) {
	worst := 1.0
	for i := 0; i < b.N; i++ {
		rows, err := exp.E4ThroughputVsCapacity(io.Discard, 0, 10, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if frac := r.Asymptotic / r.CapacityUB; frac < worst {
				worst = frac
			}
		}
	}
	b.ReportMetric(worst, "worst-asym/UB")
}

// BenchmarkE5_Pipelining regenerates the Figure 3 / Appendix D pipelining
// comparison on multi-hop circulants, reporting the largest speedup.
func BenchmarkE5_Pipelining(b *testing.B) {
	speedup := 0.0
	for i := 0; i < b.N; i++ {
		rows, err := exp.E5Pipelining(io.Discard, 0, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if s := r.Unpipelined / r.Pipelined; s > speedup {
				speedup = s
			}
		}
	}
	b.ReportMetric(speedup, "max-pipeline-speedup")
}

// BenchmarkE6_DisputeAmortization sweeps Q under persistent adversaries,
// reporting the final dispute-control time share (which must vanish).
func BenchmarkE6_DisputeAmortization(b *testing.B) {
	share := 0.0
	for i := 0; i < b.N; i++ {
		rows, err := exp.E6Amortization(io.Discard, 128, []int{1, 16, 256}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		share = rows[len(rows)-1].DisputeShare
	}
	b.ReportMetric(share, "phase3-share@Q=256")
}

// BenchmarkE7_BaselineComparison sweeps fat-link capacity on the
// one-thin-link clique, reporting the final NAB/EIG throughput ratio.
func BenchmarkE7_BaselineComparison(b *testing.B) {
	ratio := 0.0
	for i := 0; i < b.N; i++ {
		rows, err := exp.E7Baselines(io.Discard, 1024, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[len(rows)-1].Ratio
	}
	b.ReportMetric(ratio, "NAB/EIG@fat=32")
}

// BenchmarkE8_CorrectnessSweep fuzzes topologies, fault placements and
// strategies; any agreement/validity/bound violation fails the benchmark.
func BenchmarkE8_CorrectnessSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.E8Correctness(io.Discard, 10, 8, benchSeed+int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Rho sweeps the equality-check parameter.
func BenchmarkAblation_Rho(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationRho(io.Discard, 64, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Packing compares full gamma-tree Phase 1 against
// crippled packings.
func BenchmarkAblation_Packing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationPacking(io.Discard, 64, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_RelayPaths sweeps the disjoint-path count above 2f+1.
func BenchmarkAblation_RelayPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationRelayPaths(io.Discard, 16, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// pipelineTopologies are the lockstep-vs-pipelined comparison networks
// (recorded in EXPERIMENTS.md and BENCH_pipeline.json).
func pipelineTopologies(b *testing.B) []struct {
	name string
	g    *nab.Graph
	f    int
} {
	circ, err := nab.CirculantGraph(9, 1, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	thin, err := nab.OneThinLinkGraph(7, 2, 3, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	return []struct {
		name string
		g    *nab.Graph
		f    int
	}{
		{"K7", nab.CompleteGraph(7, 1), 2},
		{"Circulant9", circ, 1},
		{"OneThinLink7", thin, 1},
	}
}

const pipelineBatch = 16 // instances per benchmark iteration

func benchInputs(q, lenBytes int) [][]byte {
	out := make([][]byte, q)
	for i := range out {
		out[i] = make([]byte, lenBytes)
		for j := range out[i] {
			out[i][j] = byte(i + j)
		}
	}
	return out
}

// BenchmarkLockstepRunner measures sequential instances/sec of the
// lockstep core.Runner per topology (LenBytes=64, fault-free).
func BenchmarkLockstepRunner(b *testing.B) {
	for _, tp := range pipelineTopologies(b) {
		b.Run(tp.name, func(b *testing.B) {
			inputs := benchInputs(pipelineBatch, 64)
			runner, err := nab.NewRunner(nab.Config{
				Graph: tp.g, Source: 1, F: tp.f, LenBytes: 64, Seed: benchSeed,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*pipelineBatch)/b.Elapsed().Seconds(), "instances/s")
		})
	}
}

// BenchmarkPipelinedRuntime measures the concurrent runtime's
// instances/sec with W=4 in flight on the same workloads.
func BenchmarkPipelinedRuntime(b *testing.B) {
	for _, tp := range pipelineTopologies(b) {
		b.Run(tp.name, func(b *testing.B) {
			inputs := benchInputs(pipelineBatch, 64)
			rt, err := nab.NewPipelinedRunner(nab.PipelineConfig{
				Config: nab.Config{Graph: tp.g, Source: 1, F: tp.f, LenBytes: 64, Seed: benchSeed},
				Window: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := runBatch(rt, inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*pipelineBatch)/b.Elapsed().Seconds(), "instances/s")
		})
	}
}

// BenchmarkPipelineSpeedup runs both runners on CompleteGraph(7,1) /
// LenBytes=64 inside one benchmark and reports the pipelined-over-lockstep
// instances/sec ratio — the PR's >= 2x acceptance metric.
func BenchmarkPipelineSpeedup(b *testing.B) {
	inputs := benchInputs(pipelineBatch, 64)
	speedup := 0.0
	for i := 0; i < b.N; i++ {
		runner, err := nab.NewRunner(nab.Config{
			Graph: nab.CompleteGraph(7, 1), Source: 1, F: 2, LenBytes: 64, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		lockStart := time.Now()
		if _, err := runner.Run(inputs); err != nil {
			b.Fatal(err)
		}
		lockSecs := time.Since(lockStart).Seconds()

		rt, err := nab.NewPipelinedRunner(nab.PipelineConfig{
			Config: nab.Config{Graph: nab.CompleteGraph(7, 1), Source: 1, F: 2, LenBytes: 64, Seed: benchSeed},
			Window: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := runBatch(rt, inputs)
		if err != nil {
			b.Fatal(err)
		}
		rt.Close()
		speedup = res.InstancesPerSec() * lockSecs / float64(pipelineBatch)
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkNABInstance measures one fault-free end-to-end instance on K7.
func BenchmarkNABInstance(b *testing.B) {
	runner, err := nab.NewRunner(nab.Config{
		Graph: nab.CompleteGraph(7, 2), Source: 1, F: 2, LenBytes: 64, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	in := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunInstance(in); err != nil {
			b.Fatal(err)
		}
	}
}
