package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/topo"
	"nab/internal/transport"
)

// runJoinFromSnapshot drives the state-sync scenario end to end over real
// OS processes: spawn a durable 4-process cluster, SIGKILL the victim
// mid-stream, WIPE its WAL directory, and bring up a blank replacement
// with -join. The replacement must enter at a snapshot boundary (no full
// replay), and the cluster-wide merged commit sequence plus every node's
// final dispute set must be byte-identical to the lockstep oracle.
//
// One timing caveat keeps the check honest: the SIGKILL lands a few
// polling intervals after killAfter commits, so the victim's delivered
// watermark is only observed, not controlled. A node's outputs are
// computed solely by its own hosting process; if the join boundary J ends
// up above the victim's delivered count, the dead incarnation's outputs
// for (delivered, J] exist nowhere and are exempted from the union — the
// deterministic in-process test (internal/cluster) pins the gap-free
// case, and in practice killAfter is chosen so J lands at or below the
// kill point.
func runJoinFromSnapshot(t *testing.T, q, snapEvery, killAfter int, chaos *transport.ChaosConfig) {
	t.Helper()
	g := topo.CompleteBi(4, 1)
	const victim = graph.NodeID(2)
	advs := map[graph.NodeID]string{3: "flip"}
	cfg, path, rsv, dir := restartConfig(t, g, 1, 1, q, 2, snapEvery, advs, chaos)

	coreCfg, err := cfg.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	lock, err := core.NewRunner(coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lock.Run(cfg.Inputs())
	if err != nil {
		t.Fatal(err)
	}

	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	walFor := func(id graph.NodeID) string { return filepath.Join(dir, fmt.Sprintf("wal-%d", id)) }
	procs := map[graph.NodeID]*nodeProc{}
	for _, ns := range cfg.Nodes {
		files, env, err := childExtras(rsv, cfg, ns.ID)
		if err != nil {
			t.Fatal(err)
		}
		procs[ns.ID] = startNode(t, self, path, ns.ID, walFor(ns.ID), files, env)
	}

	vp := procs[victim]
	deadline := time.Now().Add(90 * time.Second)
	for vp.instLines() < killAfter {
		select {
		case <-vp.exited:
			t.Fatalf("victim %d exited before the kill point:\n%s", victim, vp.output())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %d never reached %d commits (at %d)", victim, killAfter, vp.instLines())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := vp.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-vp.exited
	firstOut := vp.output()
	delivered := vp.instLines()
	if bytes.Contains([]byte(firstOut), []byte(`"done":true`)) || delivered >= q {
		t.Fatalf("victim %d finished before the kill landed; raise q", victim)
	}
	t.Logf("killed node %d after %d of %d commits", victim, delivered, q)

	// The disaster the tentpole is for: the victim's disk is gone. The
	// replacement starts with an empty WAL directory and must state-sync.
	if err := os.RemoveAll(walFor(victim)); err != nil {
		t.Fatal(err)
	}
	vp2 := startNode(t, self, path, victim, walFor(victim), nil, nil, "-join")
	procs[victim] = vp2

	for id, np := range procs {
		select {
		case <-np.exited:
		case <-time.After(3 * time.Minute):
			t.Fatalf("node %d did not finish after the join", id)
		}
		if np.err != nil {
			t.Fatalf("node %d process failed: %v\n%s", id, np.err, np.output())
		}
	}

	// The joiner entered at a boundary-anchored floor without replay: its
	// first emitted instance reveals J.
	jm, jsum := mergeInstanceLines(t, victim, []string{vp2.output()})
	if jsum == nil {
		t.Fatal("joiner emitted no summary")
	}
	joinFloor := q
	for k := range jm {
		if k <= joinFloor {
			joinFloor = k - 1
		}
	}
	if joinFloor <= 0 {
		t.Fatalf("joiner re-emitted instance %d; it replayed history instead of joining from a snapshot", joinFloor+1)
	}
	if joinFloor%snapEvery != 0 {
		t.Errorf("join floor %d is not a multiple of the snapshot interval %d", joinFloor, snapEvery)
	}
	if jsum.Instances != q-joinFloor {
		t.Errorf("joiner summary reports %d instances, want %d (floor %d)", jsum.Instances, q-joinFloor, joinFloor)
	}
	t.Logf("joiner entered at floor %d (victim had delivered %d)", joinFloor, delivered)

	// Merge every stream; the dead incarnation's lines cover the prefix
	// the joiner's floor hides.
	agreed := make([]map[graph.NodeID][]byte, q)
	for i := range agreed {
		agreed[i] = map[graph.NodeID][]byte{}
	}
	for id, np := range procs {
		outs := []string{np.output()}
		if id == victim {
			outs = []string{firstOut, np.output()}
		}
		merged, sum := mergeInstanceLines(t, id, outs)
		if sum == nil {
			t.Fatalf("node %d emitted no summary", id)
		}
		if sum.Disputes != lock.Disputes().String() {
			t.Errorf("node %d dispute set %q, want %q", id, sum.Disputes, lock.Disputes())
		}
		for k, il := range merged {
			w := want.Instances[k-1]
			if il.Mismatch != w.Mismatch || il.Phase3 != w.Phase3 {
				t.Errorf("node %d instance %d: schedule diverged from lockstep", id, k)
			}
			for v, out := range il.Outputs {
				if prev, dup := agreed[k-1][v]; dup && !bytes.Equal(prev, out) {
					t.Errorf("instance %d: node %d output reported twice with different values", k, v)
				}
				agreed[k-1][v] = out
			}
		}
	}
	lost := 0
	for i, w := range want.Instances {
		k := i + 1
		for v, out := range w.Outputs {
			got, ok := agreed[i][v]
			if !ok {
				if v == victim && k > delivered && k <= joinFloor {
					lost++ // the dead disk's unemitted output; see above
					continue
				}
				t.Errorf("instance %d: node %d output never committed", k, v)
				continue
			}
			if !bytes.Equal(got, out) {
				t.Errorf("instance %d: node %d output %x, want %x", k, v, got, out)
			}
		}
	}
	if lost > 0 {
		t.Logf("exempted %d dead-disk victim outputs in (%d, %d]", lost, delivered, joinFloor)
	}
}

// TestClusterJoinFromSnapshot is the tentpole's acceptance check: a
// blank-WAL process joins a live 4-process TCP cluster mid-stream from a
// digest-validated snapshot, and the merged commit sequence + dispute
// sets stay byte-identical to the lockstep oracle.
func TestClusterJoinFromSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	runJoinFromSnapshot(t, 32, 8, 10, nil)
}

// TestClusterJoinFromSnapshotUnderChaos layers the PR 7 hostile physics —
// per-link latency, jitter, reordering, plus a survivor-to-survivor
// directed partition that opens early and heals mid-join — on the
// state-sync scenario.
func TestClusterJoinFromSnapshotUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	chaos := &transport.ChaosConfig{
		Seed: 77,
		Default: transport.LinkChaos{
			Latency:     transport.Duration(time.Millisecond),
			Jitter:      transport.Duration(3 * time.Millisecond),
			ReorderProb: 0.25,
		},
		Partitions: []transport.Partition{
			{From: []graph.NodeID{1}, To: []graph.NodeID{4},
				Start: transport.Duration(300 * time.Millisecond),
				Heal:  transport.Duration(2500 * time.Millisecond)},
		},
	}
	runJoinFromSnapshot(t, 32, 8, 10, chaos)
}
