// Command nabnode runs one NAB node as its own OS process in a
// multi-process cluster: peers dial full-mesh TCP links from a shared
// cluster.json, the pipelined runtime drives only the locally hosted
// node, and committed results stream to stdout as JSON lines. Outputs
// are byte-identical to the single-process lockstep runner.
//
// Run one node (repeat per node of the cluster):
//
//	nabnode -cluster cluster.json -id 3
//
// Or bring up a whole local cluster — one child process per node — with
// one command (writes the generated config next to the workload flags):
//
//	nabnode -spawn-local -topo k4 -f 1 -len 24 -q 8 -adversary 3=alarm
//
// Per committed instance, a node process emits
//
//	{"node":3,"instance":1,"outputs":{"3":"..."},"mismatch":false,"phase3":false}
//
// (outputs base64-keyed by hosted node, fault-free hosts only), and on
// completion a summary line {"node":3,"done":true,...}. The -spawn-local
// parent relays every child's lines and exits non-zero if any child
// fails.
//
// Liveness: NAB is a synchronous-model protocol — crash faults are part
// of the fault model only as scripted in-protocol adversaries ("crash"),
// whose processes keep pacing the rounds. A node PROCESS that dies
// outside the model (kill -9, host loss) stalls the remaining peers.
// With -wal DIR the stall is recoverable: each process appends its
// accepted submissions and commits to a write-ahead log, and a killed
// process restarted with the same flags replays its log, re-pins its
// mesh links, and rejoins mid-stream — the cluster rolls back to its
// common committed watermark, re-drives the lost frames, and the merged
// commit sequence stays byte-identical to the uninterrupted run (commits
// replayed from the log are re-emitted, so the restarted process's
// output stream is complete). Without -wal, supervise processes
// externally and restart the run.
//
// State sync: a process whose WAL is LOST (disk replacement, host
// rebuild) restarts blank with -join. Instead of replaying history it
// announces itself, fetches the newest snapshot at an agreed boundary
// from f+1 peers over the control plane — chunked transfer with digest
// cross-validation, so up to f Byzantine snapshot servers cannot forge
// state — folds the peers' WAL tail up to the rewind watermark, and
// enters the stream there. Rolling restarts (drain, snapshot, restart,
// join every process in sequence) keep the cluster byte-identical to an
// uninterrupted run.
//
// Observability: -admin ADDR (node mode) serves /metrics (Prometheus
// text exposition), /healthz (engine liveness + WAL sync lag) and
// /debug/pprof; -admin-base PORT (spawn mode) gives node v's child the
// admin endpoint 127.0.0.1:PORT+v, so a live cluster is scrapable per
// process. -flight N arms the per-process flight recorder (spawn mode
// propagates it to every child): GET /debug/flight downloads the ring
// as a binary dump, tools/nabtrace merges the per-process dumps into a
// Chrome trace, and anomalies (dispute barriers, digest tripwires,
// rejoin/join entry) drop black-box dumps next to each WAL. Structured
// rejoin/recovery traces: NAB_REJOIN_DEBUG=1.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"nab"
	"nab/internal/admin"
	"nab/internal/cluster"
	"nab/internal/graph"
	"nab/internal/topo"
)

// maxHealthyWALLag is the /healthz threshold on appended-but-unsynced
// WAL records; the group-commit syncer keeps it near zero in a healthy
// process.
const maxHealthyWALLag = 4096

// instanceLine is one committed instance on stdout.
type instanceLine struct {
	Node     graph.NodeID            `json:"node"`
	Instance int                     `json:"instance"`
	Outputs  map[graph.NodeID][]byte `json:"outputs"`
	Mismatch bool                    `json:"mismatch"`
	Phase3   bool                    `json:"phase3"`
}

// summaryLine closes a node's stream.
type summaryLine struct {
	Node      graph.NodeID `json:"node"`
	Done      bool         `json:"done"`
	Instances int          `json:"instances"`
	WallSecs  float64      `json:"wallSecs"`
	Replays   int          `json:"replays"`
	Dropped   int64        `json:"dropped"`
	Disputes  string       `json:"disputes"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nabnode:", err)
		os.Exit(1)
	}
}

type adversaryFlags map[graph.NodeID]string

func (af adversaryFlags) String() string { return fmt.Sprint(map[graph.NodeID]string(af)) }

func (af adversaryFlags) Set(s string) error {
	idStr, spec, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want node=strategy, got %q", s)
	}
	var id int
	if _, err := fmt.Sscanf(idStr, "%d", &id); err != nil {
		return fmt.Errorf("bad node id %q: %w", idStr, err)
	}
	if _, err := cluster.ParseAdversary(spec); err != nil {
		return err
	}
	af[graph.NodeID(id)] = spec
	return nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nabnode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfgPath := fs.String("cluster", "", "cluster.json path (node mode: required)")
	id := fs.Int("id", 0, "node id this process hosts (node mode)")
	spawn := fs.Bool("spawn-local", false, "generate a loopback cluster config and spawn one child process per node")
	topoName := fs.String("topo", "k4", "spawn mode: built-in topology (k4, k5, k7, thin7, circ9)")
	file := fs.String("file", "", "spawn mode: topology file (overrides -topo)")
	source := fs.Int("source", 1, "spawn mode: source node id")
	f := fs.Int("f", 1, "spawn mode: fault bound")
	lenBytes := fs.Int("len", 24, "spawn mode: input length in bytes")
	q := fs.Int("q", 8, "spawn mode: instances to broadcast")
	window := fs.Int("window", 4, "spawn mode: pipeline window")
	seed := fs.Int64("seed", 7, "spawn mode: seed for coding matrices and workload")
	out := fs.String("out", "", "spawn mode: write the generated cluster.json here (default: temp file)")
	walDir := fs.String("wal", "", "durable WAL directory: node mode appends this process's log there and recovers from it on restart; spawn mode gives each child <dir>/node-<id>")
	join := fs.Bool("join", false, "node mode: join the live cluster as a blank process — fetch a digest-validated snapshot from f+1 peers instead of replaying local history (requires -wal with an empty directory)")
	snapEvery := fs.Int("snapshot-interval", 0, "spawn mode: join-round snapshot boundary granularity written into the generated cluster.json (0 = default)")
	chaosPath := fs.String("chaos", "", "spawn mode: chaos physics spec (JSON ChaosConfig) injected into every child via the generated cluster.json")
	adminAddr := fs.String("admin", "", "node mode: serve /metrics (Prometheus text), /healthz and /debug/pprof on this address")
	adminBase := fs.Int("admin-base", 0, "spawn mode: give each child an admin endpoint on 127.0.0.1:<base+id>")
	flightCap := fs.Int("flight", 0, "arm the flight recorder with a ring of N events per process (spawn mode propagates it to every child); dump via /debug/flight, anomalies drop black-box dumps in the WAL dir")
	advs := adversaryFlags{}
	fs.Var(advs, "adversary", "spawn mode, node=strategy (repeatable): crash, flip, coded, alarm, suppress, random:<seed>")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *spawn {
		chaos, err := loadChaos(*chaosPath)
		if err != nil {
			return err
		}
		return spawnLocal(stdout, stderr, *topoName, *file, *source, *f, *lenBytes, *q, *window, *seed, *out, *walDir, *adminBase, *snapEvery, *flightCap, advs, chaos)
	}
	if *chaosPath != "" {
		return fmt.Errorf("-chaos is a spawn-mode flag; node mode inherits the spec from cluster.json")
	}
	if *snapEvery != 0 {
		return fmt.Errorf("-snapshot-interval is a spawn-mode flag; node mode inherits the boundary from cluster.json")
	}
	if *cfgPath == "" {
		return fmt.Errorf("either -cluster with -id (node mode) or -spawn-local is required")
	}
	if *join && *walDir == "" {
		return fmt.Errorf("-join requires -wal: the joined state must land in a durable log")
	}
	cfg, err := cluster.Load(*cfgPath)
	if err != nil {
		return err
	}
	rsv, err := inheritedListeners(cfg, graph.NodeID(*id))
	if err != nil {
		return err
	}
	return runNode(cfg, graph.NodeID(*id), stdout, rsv, *walDir, *adminAddr, *join, *flightCap)
}

// inheritedListeners rebuilds the listeners a -spawn-local parent handed
// down as file descriptors (NABNODE_MESH_FD for the mesh endpoint,
// NABNODE_CTRL_FD for the coordinator's control plane), so the child
// serves exactly the sockets the parent reserved — no release-then-rebind
// window. Returns nil when the process was started without a handoff.
func inheritedListeners(cfg *cluster.Config, id graph.NodeID) (*cluster.Reservation, error) {
	meshFD, ctrlFD := os.Getenv("NABNODE_MESH_FD"), os.Getenv("NABNODE_CTRL_FD")
	if meshFD == "" && ctrlFD == "" {
		return nil, nil
	}
	spec, ok := cfg.Spec(id)
	if !ok {
		return nil, fmt.Errorf("node %d has no spec", id)
	}
	rsv := cluster.NewReservation()
	adopt := func(env, addr string) error {
		if env == "" {
			return nil
		}
		fd, err := strconv.Atoi(env)
		if err != nil {
			return fmt.Errorf("bad listener fd %q: %w", env, err)
		}
		f := os.NewFile(uintptr(fd), addr)
		l, err := net.FileListener(f)
		f.Close() // FileListener dups; drop the inherited descriptor
		if err != nil {
			return fmt.Errorf("adopt listener fd %d for %s: %w", fd, addr, err)
		}
		rsv.Add(addr, l)
		return nil
	}
	if err := adopt(meshFD, spec.Addr); err != nil {
		return nil, err
	}
	if err := adopt(ctrlFD, cfg.CtrlAddr); err != nil {
		return nil, err
	}
	return rsv, nil
}

// runNode is node mode: open a streaming session as the cluster host of
// node id, feed it the configured workload, relay commits as JSON lines,
// print the summary. A non-empty walDir makes the session durable: a
// restarted process recovers its log (already-committed instances are
// re-emitted) and rejoins the cluster mid-stream. With join set the
// process starts blank instead — it announces itself, fetches a
// digest-validated snapshot (plus WAL-fold tail) from f+1 peers over the
// control plane, and enters the stream at the snapshot boundary without
// replaying history; the whole round rewinds there, so the joiner
// re-executes the short tail live and its re-built commit chain is
// checked against the quorum's digest. Instances below the boundary are
// never emitted by this process; peers that committed them carry the
// record.
func runNode(cfg *cluster.Config, id graph.NodeID, stdout io.Writer, rsv *cluster.Reservation, walDir, adminAddr string, join bool, flightCap int) error {
	ctx := context.Background()
	opts := []nab.SessionOption{nab.WithCluster(cfg, id, nab.ClusterOptions{Reservation: rsv, Join: join})}
	if walDir != "" {
		opts = append(opts, nab.Recover(walDir))
	}
	if flightCap > 0 {
		opts = append(opts, nab.WithFlightRecorder(flightCap))
	}
	sess, err := nab.Open(ctx, nab.Config{}, opts...)
	if err != nil {
		return err
	}
	defer sess.Close()
	if adminAddr != "" {
		adm, err := admin.Serve(adminAddr, admin.Options{Checks: []admin.Check{
			{Name: "engine", Probe: sess.Err},
			{Name: "wal", Probe: func() error {
				if lag := sess.WALSyncLag(); lag > maxHealthyWALLag {
					return fmt.Errorf("sync lag %d records", lag)
				}
				return nil
			}},
		}})
		if err != nil {
			return err
		}
		defer adm.Close()
	}
	go func() {
		inputs := cfg.Inputs()
		// A recovered session has already accounted for a prefix of the
		// deterministic workload — committed instances replay from the
		// log, uncommitted accepted ones re-enter the stream directly.
		if skip := int(sess.RecoveredSeq()); skip > 0 {
			if skip > len(inputs) {
				skip = len(inputs)
			}
			inputs = inputs[skip:]
		}
		for _, in := range inputs {
			if _, err := sess.Submit(ctx, in); err != nil {
				return // the terminal error surfaces via sess.Err
			}
		}
		sess.Drain(ctx)
	}()
	enc := json.NewEncoder(stdout)
	for c := range sess.Commits() {
		if err := enc.Encode(instanceLine{
			Node: id, Instance: c.Result.K, Outputs: c.Result.Outputs,
			Mismatch: c.Result.Mismatch, Phase3: c.Result.Phase3,
		}); err != nil {
			return err
		}
	}
	if err := sess.Err(); err != nil {
		return err
	}
	res := sess.Result()
	return enc.Encode(summaryLine{
		Node: id, Done: true, Instances: len(res.Instances),
		WallSecs: res.Wall.Seconds(), Replays: res.Replays,
		Dropped: sess.Cluster().Dropped(), Disputes: sess.Disputes().String(),
	})
}

// childExtras dups node v's reserved listeners out of rsv for handing to
// its child process: the mesh endpoint always, plus the control-plane
// endpoint when v's process hosts the source (the coordinator). Returns
// the files for exec.Cmd.ExtraFiles and the matching NABNODE_*_FD env
// entries (ExtraFiles[0] becomes fd 3 in the child).
func childExtras(rsv *cluster.Reservation, cfg *cluster.Config, v graph.NodeID) ([]*os.File, []string, error) {
	spec, ok := cfg.Spec(v)
	if !ok {
		return nil, nil, fmt.Errorf("node %d has no spec", v)
	}
	mesh, err := rsv.File(spec.Addr)
	if err != nil {
		return nil, nil, err
	}
	files := []*os.File{mesh}
	env := []string{"NABNODE_MESH_FD=3"}
	if v == cfg.Source {
		ctrl, err := rsv.File(cfg.CtrlAddr)
		if err != nil {
			mesh.Close()
			return nil, nil, err
		}
		files = append(files, ctrl)
		env = append(env, "NABNODE_CTRL_FD=4")
	}
	return files, env, nil
}

// spawnLocal generates a loopback config (every node its own process) and
// supervises one child nabnode per node. The parent reserves every
// endpoint as a held listener and hands the sockets to the children as
// inherited descriptors, so no port can be lost between reservation and
// boot.
func spawnLocal(stdout, stderr io.Writer, topoName, file string, source, f, lenBytes, q, window int, seed int64, out, walDir string, adminBase, snapEvery, flightCap int, advs adversaryFlags, chaos *nab.ChaosConfig) error {
	g, err := loadGraph(file, topoName)
	if err != nil {
		return err
	}
	nodes := g.Nodes()
	rsv, err := cluster.ReserveAddrs(len(nodes) + 1)
	if err != nil {
		return err
	}
	defer rsv.Close()
	addrs := rsv.Addrs()
	cfg := &cluster.Config{
		Topology: g.Marshal(), Source: graph.NodeID(source), F: f,
		LenBytes: lenBytes, Seed: seed, Window: window, Instances: q,
		CtrlAddr:         addrs[len(nodes)],
		SnapshotInterval: snapEvery,
		Chaos:            chaos,
	}
	for i, v := range nodes {
		cfg.Nodes = append(cfg.Nodes, cluster.NodeSpec{ID: v, Addr: addrs[i], Adversary: advs[v]})
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if out == "" {
		tmp, err := os.CreateTemp("", "nabnode-cluster-*.json")
		if err != nil {
			return err
		}
		out = tmp.Name()
		tmp.Close()
		defer os.Remove(out)
	}
	if err := cfg.Save(out); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "nabnode: spawning %d node processes (cluster config: %s)\n", len(nodes), out)

	self, err := os.Executable()
	if err != nil {
		return err
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	var outMu sync.Mutex
	childErr := &syncWriter{w: stderr} // children's stderr copies run concurrently
	for i, v := range nodes {
		files, env, err := childExtras(rsv, cfg, v)
		if err != nil {
			return err
		}
		args := []string{"-cluster", out, "-id", fmt.Sprint(v)}
		if walDir != "" {
			args = append(args, "-wal", filepath.Join(walDir, fmt.Sprintf("node-%d", v)))
		}
		if adminBase > 0 {
			// Predictable per-node admin ports: node v scrapes at base+v.
			args = append(args, "-admin", fmt.Sprintf("127.0.0.1:%d", adminBase+int(v)))
		}
		if flightCap > 0 {
			args = append(args, "-flight", fmt.Sprint(flightCap))
		}
		cmd := exec.Command(self, args...)
		cmd.Env = append(append(os.Environ(), "NABNODE_CHILD=1"), env...)
		cmd.ExtraFiles = files
		cmd.Stderr = childErr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		err = cmd.Start()
		for _, f := range files {
			f.Close() // the child owns the sockets now
		}
		if err != nil {
			return fmt.Errorf("spawn node %d: %w", v, err)
		}
		wg.Add(1)
		go func(i int, v graph.NodeID) {
			defer wg.Done()
			sc := bufio.NewScanner(pipe)
			sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
			for sc.Scan() {
				outMu.Lock()
				fmt.Fprintln(stdout, sc.Text())
				outMu.Unlock()
			}
			if err := cmd.Wait(); err != nil {
				errs[i] = fmt.Errorf("node %d process: %w", v, err)
			}
		}(i, v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	wall := time.Since(start)
	fmt.Fprintf(stderr, "nabnode: %d processes x %d instances in %.2fs (%.1f inst/s cluster-wide)\n",
		len(nodes), q, wall.Seconds(), float64(q)/wall.Seconds())
	return nil
}

// syncWriter serializes the children's interleaved writes to one sink.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// loadChaos reads a ChaosConfig JSON spec (see transport.ChaosConfig for
// the schema; durations are "50ms"-style strings). The spec lands in the
// generated cluster.json so every child injects the same seeded physics.
func loadChaos(path string) (*nab.ChaosConfig, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &nab.ChaosConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("chaos spec %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("chaos spec %s: %w", path, err)
	}
	return cfg, nil
}

func loadGraph(file, name string) (*graph.Directed, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return graph.ParseDirected(string(data))
	}
	switch name {
	case "k4":
		return topo.CompleteBi(4, 1), nil
	case "k5":
		return topo.CompleteBi(5, 2), nil
	case "k7":
		return topo.CompleteBi(7, 2), nil
	case "thin7":
		return topo.OneThinLink(7, 2, 3, 8, 1)
	case "circ9":
		return topo.Circulant(9, 1, 1, 2)
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
