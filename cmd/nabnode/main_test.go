package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"nab/internal/cluster"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/topo"
)

// TestMain doubles as the nabnode binary: the e2e tests (and -spawn-local
// itself) re-exec the test executable with NABNODE_CHILD=1, so each
// cluster node genuinely runs in an OS process of its own, over real TCP
// sockets, without needing a prebuilt binary.
func TestMain(m *testing.M) {
	if os.Getenv("NABNODE_CHILD") == "1" {
		if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "nabnode:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// e2eConfig builds a K4 cluster config with one process per node, its
// endpoints reserved as held listeners for the fd handoff.
func e2eConfig(t *testing.T, q int, advs map[graph.NodeID]string) (*cluster.Config, string, *cluster.Reservation) {
	t.Helper()
	g := topo.CompleteBi(4, 1)
	nodes := g.Nodes()
	rsv, err := cluster.ReserveAddrs(len(nodes) + 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsv.Close() })
	addrs := rsv.Addrs()
	cfg := &cluster.Config{
		Topology: g.Marshal(), Source: 1, F: 1,
		LenBytes: 24, Seed: 11, Window: 4, Instances: q,
		CtrlAddr: addrs[len(nodes)],
	}
	for i, v := range nodes {
		cfg.Nodes = append(cfg.Nodes, cluster.NodeSpec{ID: v, Addr: addrs[i], Adversary: advs[v]})
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/cluster.json"
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	return cfg, path, rsv
}

// spawnNodes runs one OS process per node of the config — each adopting
// its reserved listeners via inherited descriptors — and returns each
// process's stdout.
func spawnNodes(t *testing.T, cfg *cluster.Config, path string, rsv *cluster.Reservation) map[graph.NodeID]string {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	outs := map[graph.NodeID]*bytes.Buffer{}
	var wg sync.WaitGroup
	errs := make([]error, len(cfg.Nodes))
	for i, ns := range cfg.Nodes {
		buf := &bytes.Buffer{}
		outs[ns.ID] = buf
		files, env, err := childExtras(rsv, cfg, ns.ID)
		if err != nil {
			t.Fatalf("node %d listeners: %v", ns.ID, err)
		}
		cmd := exec.CommandContext(ctx, self, "-cluster", path, "-id", fmt.Sprint(ns.ID))
		cmd.Env = append(append(os.Environ(), "NABNODE_CHILD=1"), env...)
		cmd.ExtraFiles = files
		cmd.Stdout = buf
		cmd.Stderr = os.Stderr
		err = cmd.Start()
		for _, f := range files {
			f.Close() // the child owns the sockets now
		}
		if err != nil {
			t.Fatalf("spawn node %d: %v", ns.ID, err)
		}
		wg.Add(1)
		go func(i int, id graph.NodeID) {
			defer wg.Done()
			if err := cmd.Wait(); err != nil {
				errs[i] = fmt.Errorf("node %d process: %w", id, err)
			}
		}(i, ns.ID)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	res := map[graph.NodeID]string{}
	for id, buf := range outs {
		res[id] = buf.String()
	}
	return res
}

// parseStream decodes one node process's JSONL output.
func parseStream(t *testing.T, id graph.NodeID, out string) ([]instanceLine, summaryLine) {
	t.Helper()
	var lines []instanceLine
	var sum summaryLine
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		raw := sc.Text()
		if strings.Contains(raw, `"done":true`) {
			if err := json.Unmarshal([]byte(raw), &sum); err != nil {
				t.Fatalf("node %d summary line %q: %v", id, raw, err)
			}
			continue
		}
		var il instanceLine
		if err := json.Unmarshal([]byte(raw), &il); err != nil {
			t.Fatalf("node %d instance line %q: %v", id, raw, err)
		}
		lines = append(lines, il)
	}
	if !sum.Done {
		t.Fatalf("node %d emitted no summary line; output:\n%s", id, out)
	}
	return lines, sum
}

// TestClusterE2E is the PR's acceptance check: a 4-process K4 cluster
// (separate OS processes over real TCP) completes 8 pipelined instances
// with outputs byte-identical to the lockstep Runner, under the honest
// schedule and three adversary scenarios.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	const q = 8
	scenarios := []struct {
		name string
		advs map[graph.NodeID]string
	}{
		{"Honest", nil},
		{"Crash", map[graph.NodeID]string{3: "crash"}},
		{"BlockFlipper", map[graph.NodeID]string{3: "flip"}},
		{"FalseAlarm", map[graph.NodeID]string{3: "alarm"}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			cfg, path, rsv := e2eConfig(t, q, sc.advs)

			// Lockstep oracle.
			coreCfg, err := cfg.CoreConfig()
			if err != nil {
				t.Fatal(err)
			}
			lock, err := core.NewRunner(coreCfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := lock.Run(cfg.Inputs())
			if err != nil {
				t.Fatal(err)
			}

			outs := spawnNodes(t, cfg, path, rsv)

			merged := make([]map[graph.NodeID][]byte, q)
			for i := range merged {
				merged[i] = map[graph.NodeID][]byte{}
			}
			for id, out := range outs {
				lines, sum := parseStream(t, id, out)
				if sum.Instances != q {
					t.Errorf("node %d committed %d instances, want %d", id, sum.Instances, q)
				}
				if sum.Disputes != lock.Disputes().String() {
					t.Errorf("node %d dispute set %q, want %q", id, sum.Disputes, lock.Disputes())
				}
				if sum.Dropped != 0 {
					t.Errorf("node %d dropped %d frames", id, sum.Dropped)
				}
				for _, il := range lines {
					w := want.Instances[il.Instance-1]
					if il.Mismatch != w.Mismatch || il.Phase3 != w.Phase3 {
						t.Errorf("node %d instance %d: mismatch/phase3 = %v/%v, want %v/%v",
							id, il.Instance, il.Mismatch, il.Phase3, w.Mismatch, w.Phase3)
					}
					for v, out := range il.Outputs {
						if prev, dup := merged[il.Instance-1][v]; dup && !bytes.Equal(prev, out) {
							t.Errorf("instance %d: node %d output reported twice with different values", il.Instance, v)
						}
						merged[il.Instance-1][v] = out
					}
				}
			}
			for i, w := range want.Instances {
				if len(merged[i]) != len(w.Outputs) {
					t.Errorf("instance %d: cluster committed %d outputs, lockstep %d", i+1, len(merged[i]), len(w.Outputs))
				}
				for v, out := range w.Outputs {
					if !bytes.Equal(merged[i][v], out) {
						t.Errorf("instance %d: node %d output %x, want %x", i+1, v, merged[i][v], out)
					}
				}
			}
		})
	}
}

// TestSpawnLocal exercises the one-command bring-up path end to end: the
// parent generates the config, spawns one child OS process per node, and
// relays their streams.
func TestSpawnLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	outPath := t.TempDir() + "/cluster.json"
	err := run([]string{
		"-spawn-local", "-topo", "k4", "-f", "1", "-len", "16",
		"-q", "4", "-seed", "3", "-out", outPath, "-adversary", "4=crash",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("spawn-local: %v\nstderr:\n%s", err, stderr.String())
	}
	if _, err := cluster.Load(outPath); err != nil {
		t.Errorf("generated config does not load: %v", err)
	}
	done := 0
	sc := bufio.NewScanner(strings.NewReader(stdout.String()))
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"done":true`) {
			done++
		}
	}
	if done != 4 {
		t.Errorf("saw %d summary lines, want 4; output:\n%s", done, stdout.String())
	}
}
