package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nab/internal/cluster"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/topo"
	"nab/internal/transport"
)

// nodeProc is one supervised nabnode child with live stdout capture.
type nodeProc struct {
	id  graph.NodeID
	cmd *exec.Cmd

	mu    sync.Mutex
	lines []string
	inst  int // instance lines seen so far

	exited chan struct{}
	err    error
}

// startNode spawns one nabnode child. files/env carry inherited listener
// descriptors (nil on a restart, which rebinds its configured addresses);
// extra appends flags such as -join.
func startNode(t *testing.T, self, cfgPath string, id graph.NodeID, walDir string, files []*os.File, env []string, extra ...string) *nodeProc {
	t.Helper()
	np := &nodeProc{id: id, exited: make(chan struct{})}
	args := []string{"-cluster", cfgPath, "-id", fmt.Sprint(id), "-wal", walDir}
	args = append(args, extra...)
	np.cmd = exec.Command(self, args...)
	np.cmd.Env = append(append(os.Environ(), "NABNODE_CHILD=1"), env...)
	np.cmd.ExtraFiles = files
	np.cmd.Stderr = os.Stderr
	pipe, err := np.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := np.cmd.Start(); err != nil {
		t.Fatalf("spawn node %d: %v", id, err)
	}
	for _, f := range files {
		f.Close() // the child owns the sockets now
	}
	t.Cleanup(func() {
		np.cmd.Process.Kill() // no orphans when the test dies mid-scenario
	})
	go func() {
		sc := bufio.NewScanner(pipe)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		for sc.Scan() {
			np.mu.Lock()
			np.lines = append(np.lines, sc.Text())
			if !bytes.Contains([]byte(sc.Text()), []byte(`"done":true`)) {
				np.inst++
			}
			np.mu.Unlock()
		}
		np.err = np.cmd.Wait()
		close(np.exited)
	}()
	return np
}

func (np *nodeProc) instLines() int {
	np.mu.Lock()
	defer np.mu.Unlock()
	return np.inst
}

func (np *nodeProc) output() string {
	np.mu.Lock()
	defer np.mu.Unlock()
	var sb bytes.Buffer
	for _, l := range np.lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// restartConfig builds a per-node-process cluster config over g with WAL
// directories under a fresh temp root. chaos (optional) rides inside the
// shared cluster.json, so every child injects the same physics.
func restartConfig(t *testing.T, g *graph.Directed, source graph.NodeID, f, q, window, snapEvery int, advs map[graph.NodeID]string, chaos *transport.ChaosConfig) (*cluster.Config, string, *cluster.Reservation, string) {
	t.Helper()
	nodes := g.Nodes()
	rsv, err := cluster.ReserveAddrs(len(nodes) + 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsv.Close() })
	addrs := rsv.Addrs()
	cfg := &cluster.Config{
		Topology: g.Marshal(), Source: source, F: f,
		LenBytes: 24, Seed: 13, Window: window, Instances: q,
		CtrlAddr:         addrs[len(nodes)],
		SnapshotInterval: snapEvery,
		Chaos:            chaos,
	}
	for i, v := range nodes {
		cfg.Nodes = append(cfg.Nodes, cluster.NodeSpec{ID: v, Addr: addrs[i], Adversary: advs[v]})
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	return cfg, path, rsv, dir
}

// mergeInstanceLines folds one node's (possibly multi-incarnation)
// output into instance-keyed lines, verifying that replayed duplicates
// are byte-identical to the original emission.
func mergeInstanceLines(t *testing.T, id graph.NodeID, outs []string) (map[int]instanceLine, *summaryLine) {
	t.Helper()
	merged := map[int]instanceLine{}
	var sum *summaryLine
	for _, out := range outs {
		sc := bufio.NewScanner(bytes.NewReader([]byte(out)))
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		for sc.Scan() {
			raw := sc.Text()
			if bytes.Contains([]byte(raw), []byte(`"done":true`)) {
				s := summaryLine{}
				if err := json.Unmarshal([]byte(raw), &s); err != nil {
					t.Fatalf("node %d summary %q: %v", id, raw, err)
				}
				sum = &s
				continue
			}
			var il instanceLine
			if err := json.Unmarshal([]byte(raw), &il); err != nil {
				t.Fatalf("node %d line %q: %v", id, raw, err)
			}
			if prev, dup := merged[il.Instance]; dup {
				if prev.Mismatch != il.Mismatch || prev.Phase3 != il.Phase3 || len(prev.Outputs) != len(il.Outputs) {
					t.Errorf("node %d instance %d re-emitted with different schedule", id, il.Instance)
				}
				for v, out := range il.Outputs {
					if !bytes.Equal(prev.Outputs[v], out) {
						t.Errorf("node %d instance %d re-emitted with different output for %d", id, il.Instance, v)
					}
				}
				continue
			}
			merged[il.Instance] = il
		}
	}
	return merged, sum
}

// runKillRestart drives the scenario: spawn every node durably, SIGKILL
// the victim once it has emitted killAfter commits, restart it on the
// same WAL, and assert the cluster completes with the merged commit
// sequence (and dispute set) byte-identical to the lockstep oracle.
func runKillRestart(t *testing.T, g *graph.Directed, source graph.NodeID, f, q int, advs map[graph.NodeID]string, victim graph.NodeID, killAfter int, chaos *transport.ChaosConfig) {
	t.Helper()
	cfg, path, rsv, dir := restartConfig(t, g, source, f, q, 2, 0, advs, chaos)

	coreCfg, err := cfg.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	lock, err := core.NewRunner(coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lock.Run(cfg.Inputs())
	if err != nil {
		t.Fatal(err)
	}

	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	procs := map[graph.NodeID]*nodeProc{}
	for _, ns := range cfg.Nodes {
		files, env, err := childExtras(rsv, cfg, ns.ID)
		if err != nil {
			t.Fatal(err)
		}
		procs[ns.ID] = startNode(t, self, path, ns.ID,
			filepath.Join(dir, fmt.Sprintf("wal-%d", ns.ID)), files, env)
	}

	// Kill the victim once it has committed (and logged) killAfter
	// instances mid-stream.
	vp := procs[victim]
	deadline := time.Now().Add(90 * time.Second)
	for vp.instLines() < killAfter {
		select {
		case <-vp.exited:
			t.Fatalf("victim %d exited before the kill point:\n%s", victim, vp.output())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %d never reached %d commits (at %d)", victim, killAfter, vp.instLines())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := vp.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-vp.exited
	firstOut := vp.output()
	if bytes.Contains([]byte(firstOut), []byte(`"done":true`)) || vp.instLines() >= q {
		t.Fatalf("victim %d finished its workload before the kill landed; the scenario needs a mid-stream crash (raise q)", victim)
	}
	t.Logf("killed node %d after %d of %d commits", victim, vp.instLines(), q)

	// Restart on the same WAL; the fresh process rebinds the victim's
	// configured addresses itself (the killed incarnation's sockets died
	// with it) and rejoins mid-stream.
	vp2 := startNode(t, self, path, victim, filepath.Join(dir, fmt.Sprintf("wal-%d", victim)), nil, nil)
	procs[victim] = vp2

	for id, np := range procs {
		select {
		case <-np.exited:
		case <-time.After(3 * time.Minute):
			t.Fatalf("node %d did not finish after the restart", id)
		}
		if np.err != nil {
			t.Fatalf("node %d process failed: %v\n%s", id, np.err, np.output())
		}
	}

	// Merge and verify every node's commit stream.
	agreedOutputs := make([]map[graph.NodeID][]byte, q)
	for i := range agreedOutputs {
		agreedOutputs[i] = map[graph.NodeID][]byte{}
	}
	for id, np := range procs {
		outs := []string{np.output()}
		if id == victim {
			outs = []string{firstOut, np.output()}
		}
		merged, sum := mergeInstanceLines(t, id, outs)
		if sum == nil {
			t.Fatalf("node %d emitted no summary", id)
		}
		if sum.Instances != q {
			t.Errorf("node %d summary reports %d instances, want %d", id, sum.Instances, q)
		}
		if sum.Disputes != lock.Disputes().String() {
			t.Errorf("node %d dispute set %q, want %q", id, sum.Disputes, lock.Disputes())
		}
		if len(merged) != q {
			t.Errorf("node %d committed %d distinct instances, want %d (duplicated or skipped)", id, len(merged), q)
		}
		for k := 1; k <= q; k++ {
			il, ok := merged[k]
			if !ok {
				t.Errorf("node %d skipped instance %d", id, k)
				continue
			}
			w := want.Instances[k-1]
			if il.Mismatch != w.Mismatch || il.Phase3 != w.Phase3 {
				t.Errorf("node %d instance %d: mismatch/phase3 %v/%v, want %v/%v",
					id, k, il.Mismatch, il.Phase3, w.Mismatch, w.Phase3)
			}
			for v, out := range il.Outputs {
				if prev, dup := agreedOutputs[k-1][v]; dup && !bytes.Equal(prev, out) {
					t.Errorf("instance %d: node %d output reported twice with different values", k, v)
				}
				agreedOutputs[k-1][v] = out
			}
		}
	}
	for i, w := range want.Instances {
		if len(agreedOutputs[i]) != len(w.Outputs) {
			t.Errorf("instance %d: cluster committed %d outputs, lockstep %d", i+1, len(agreedOutputs[i]), len(w.Outputs))
		}
		for v, out := range w.Outputs {
			if !bytes.Equal(agreedOutputs[i][v], out) {
				t.Errorf("instance %d: node %d output %x, want %x", i+1, v, agreedOutputs[i][v], out)
			}
		}
	}
}

// TestClusterKillRestartByteIdentical is the PR's acceptance check: a
// 4-process TCP cluster survives kill -9 + restart of a node mid-stream,
// and the full commit sequence and dispute set are byte-identical to the
// lockstep oracle — no duplicated or skipped instance.
func TestClusterKillRestartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	runKillRestart(t, topo.CompleteBi(4, 1), 1, 1, 32,
		map[graph.NodeID]string{3: "flip"}, 2, 3, nil)
}

// TestClusterKillRestartUnderChaos layers seeded hostile physics on the
// kill-restart scenario: every mesh link gets latency + jitter + a
// reorder window, and a directed survivor-to-survivor partition (1->4;
// 4->1 stays healthy) opens early and heals while the victim's rejoin
// rollback is in flight. Frames delayed from before the partition arrive
// after the min-watermark rewind picked a new launch epoch — they must
// demux dead instead of corrupting the re-driven instances, and the
// merged commit sequence and dispute set must stay byte-identical to the
// lockstep oracle.
func TestClusterKillRestartUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	chaos := &transport.ChaosConfig{
		Seed: 77,
		Default: transport.LinkChaos{
			Latency:     transport.Duration(time.Millisecond),
			Jitter:      transport.Duration(3 * time.Millisecond),
			ReorderProb: 0.25,
		},
		Partitions: []transport.Partition{
			{From: []graph.NodeID{1}, To: []graph.NodeID{4},
				Start: transport.Duration(300 * time.Millisecond),
				Heal:  transport.Duration(2500 * time.Millisecond)},
		},
	}
	runKillRestart(t, topo.CompleteBi(4, 1), 1, 1, 32,
		map[graph.NodeID]string{3: "flip"}, 2, 3, chaos)
}

// TestClusterKillRestartRoles kills and restarts each deployment role —
// the source's host (the rejoin coordinator itself), a relay-only honest
// host, and the host of a silent (crash-scripted) node — on K7 and
// OneThinLink7.
func TestClusterKillRestartRoles(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	thin7 := func() *graph.Directed {
		g, err := topo.OneThinLink(7, 2, 3, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	advs := map[graph.NodeID]string{5: "crash", 6: "alarm"}
	cases := []struct {
		name   string
		g      *graph.Directed
		victim graph.NodeID
	}{
		{"K7/SourceHost", topo.CompleteBi(7, 2), 1},
		{"K7/RelayHost", topo.CompleteBi(7, 2), 2},
		{"K7/SilentHost", topo.CompleteBi(7, 2), 5},
		{"OneThinLink7/SourceHost", thin7(), 1},
		{"OneThinLink7/RelayHost", thin7(), 4},
		{"OneThinLink7/SilentHost", thin7(), 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runKillRestart(t, tc.g, 1, 2, 16, advs, tc.victim, 2, nil)
		})
	}
}
