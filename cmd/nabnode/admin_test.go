package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSpawnLocalAdminEndpoints brings up a real multi-process cluster
// with -admin-base and scrapes a child's /metrics and /healthz while it
// runs: the exposition must be well-formed Prometheus text carrying nab_*
// families, and the health probes must answer.
func TestSpawnLocalAdminEndpoints(t *testing.T) {
	// Derive a free port region from an ephemeral bind; node v serves
	// admin on base+v.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := l.Addr().(*net.TCPAddr).Port
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-spawn-local", "-topo", "k4", "-f", "1", "-len", "24",
			"-q", "64", "-window", "4", "-seed", "11",
			"-admin-base", fmt.Sprint(base),
		}, io.Discard, io.Discard)
	}()

	// Poll node 1's admin endpoint until the child has it up (or the run
	// already ended — then the scrape missed its window and we only check
	// the run result).
	adminURL := fmt.Sprintf("http://127.0.0.1:%d", base+1)
	var body string
	scraped := false
	deadline := time.After(2 * time.Minute)
poll:
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("spawn-local run: %v", err)
			}
			break poll
		case <-deadline:
			t.Fatal("cluster did not finish within the deadline")
		default:
		}
		resp, err := http.Get(adminURL + "/metrics")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body = string(raw)
		scraped = true

		hcode := 0
		var hbody string
		if hresp, err := http.Get(adminURL + "/healthz"); err == nil {
			hraw, _ := io.ReadAll(hresp.Body)
			hresp.Body.Close()
			hcode, hbody = hresp.StatusCode, string(hraw)
		}
		if hcode != http.StatusOK {
			t.Errorf("/healthz on a live node: status %d body %q", hcode, hbody)
		} else if !strings.Contains(hbody, "engine: ok") || !strings.Contains(hbody, "wal: ok") {
			t.Errorf("/healthz probes missing from %q", hbody)
		}
		break
	}
	if scraped {
		if !strings.Contains(body, "# HELP nab_") || !strings.Contains(body, "# TYPE nab_") {
			t.Errorf("live /metrics lacks nab_* exposition metadata:\n%.1000s", body)
		}
		if !strings.Contains(body, "nab_transport_frames_sent_total") {
			t.Errorf("live /metrics lacks per-link transport counters:\n%.1000s", body)
		}
		if err := <-done; err != nil {
			t.Fatalf("spawn-local run after scrape: %v", err)
		}
	} else {
		t.Log("run finished before a scrape landed; exposition checked only in cmd/nabserve")
	}
}
