// Command nabexp regenerates every experiment table recorded in
// EXPERIMENTS.md: the paper's worked examples (E1, E2), the Theorem 1
// soundness sweep (E3), throughput vs capacity bounds (E4), pipelining
// (E5), dispute-control amortization (E6), the capacity-oblivious baseline
// comparison (E7), the correctness fuzz sweep (E8), and the design
// ablations.
//
// Usage:
//
//	nabexp            # everything
//	nabexp -only e4   # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nab/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nabexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nabexp", flag.ContinueOnError)
	only := fs.String("only", "", "run a single experiment: e1..e8, ablations")
	seed := fs.Int64("seed", 2012, "base seed")
	draws := fs.Int("draws", 200, "E3 scheme draws per symbol width")
	q := fs.Int("q", 10, "E4 instances per network")
	trials := fs.Int("trials", 20, "E8 fuzz trials")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := os.Stdout
	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}
	type step struct {
		name string
		fn   func() error
	}
	steps := []step{
		{"e1", func() error { return exp.E1Fig1(w) }},
		{"e2", func() error { return exp.E2Fig2(w) }},
		{"e3", func() error { return exp.E3Theorem1(w, *draws, *seed) }},
		{"e4", func() error { _, err := exp.E4ThroughputVsCapacity(w, 0, *q, *seed); return err }},
		{"e5", func() error { _, err := exp.E5Pipelining(w, 0, *seed); return err }},
		{"e6", func() error { _, err := exp.E6Amortization(w, 0, nil, *seed); return err }},
		{"e7", func() error { _, err := exp.E7Baselines(w, 0, *seed); return err }},
		{"e8", func() error { return exp.E8Correctness(w, *trials, 8, *seed) }},
		{"ablations", func() error {
			if err := exp.AblationRho(w, 0, *seed); err != nil {
				return err
			}
			if err := exp.AblationPacking(w, 64, *seed); err != nil {
				return err
			}
			return exp.AblationRelayPaths(w, 16, *seed)
		}},
	}
	ran := false
	for _, s := range steps {
		if !want(s.name) {
			continue
		}
		ran = true
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	return nil
}
