package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	// The fast experiments run under test; the heavy ones are covered by
	// internal/exp tests and the bench harness.
	for _, name := range []string{"e1", "e2"} {
		if err := run([]string{"-only", name}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunE3SmallDraws(t *testing.T) {
	if err := run([]string{"-only", "e3", "-draws", "30"}); err != nil {
		t.Error(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "e99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
