package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltins(t *testing.T) {
	for _, name := range []string{"k4", "k5", "fig1", "thin5", "circ8"} {
		args := []string{"-topo", name}
		if name == "thin5" || name == "circ8" {
			args = append(args, "-exact=false")
		}
		if err := run(args); err != nil {
			t.Errorf("topo %s: %v", name, err)
		}
	}
}

func TestRunK7F2(t *testing.T) {
	if err := run([]string{"-topo", "k7", "-f", "2", "-exact=false"}); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-topo", "nope"}); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-file", "/does/not/exist"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-topo", "k4", "-source", "99"}); err == nil {
		t.Error("missing source accepted")
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	content := ""
	// K4 in text form.
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 4; j++ {
			if i != j {
				content += itoa(i) + " " + itoa(j) + " 1\n"
			}
		}
	}
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path}); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string { return string(rune('0' + v)) }
