// Command nabcap prints the capacity analysis of a network: gamma_1, U_1,
// gamma*, rho*, the Theorem 2 capacity upper bound and the Theorem 3 NAB
// throughput guarantee.
//
// Usage:
//
//	nabcap -topo k4            # built-in: k4, k5, k7, fig1, thin5, circ8
//	nabcap -file net.txt       # "from to capacity" per line
//	nabcap -topo k7 -f 2 -exact=false
package main

import (
	"flag"
	"fmt"
	"os"

	"nab/internal/capacity"
	"nab/internal/graph"
	"nab/internal/texttab"
	"nab/internal/topo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nabcap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nabcap", flag.ContinueOnError)
	topoName := fs.String("topo", "k4", "built-in topology: k4, k5, k7, fig1, thin5, circ8")
	file := fs.String("file", "", "topology file (overrides -topo)")
	source := fs.Int("source", 1, "source node id")
	f := fs.Int("f", 1, "fault bound")
	exact := fs.Bool("exact", true, "exact gamma* enumeration (small networks)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := loadGraph(*file, *topoName)
	if err != nil {
		return err
	}
	rep, err := capacity.Analyze(g, graph.NodeID(*source), *f, *exact)
	if err != nil {
		return err
	}
	t := texttab.New(fmt.Sprintf("Capacity analysis (n=%d, f=%d, source=%d)", rep.N, rep.F, rep.Source),
		"quantity", "value")
	t.Addf("gamma_1 (broadcast mincut of G)", rep.Gamma1)
	t.Addf("U_1 (min pairwise mincut over Omega_1)", rep.U1)
	t.Addf("rho* = U_1/2", rep.RhoStar)
	t.Addf("gamma* (min over reachable instance graphs)", rep.GammaStar)
	t.Addf("gamma* enumeration exact", rep.GammaExact)
	t.Addf("capacity upper bound min(gamma*, 2 rho*)", rep.CapacityUB)
	t.Addf("T_NAB lower bound gamma* rho*/(gamma*+rho*)", rep.TNABBound)
	t.Addf("guaranteed fraction of capacity", rep.Guarantee)
	fmt.Print(t)
	return nil
}

func loadGraph(file, name string) (*graph.Directed, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return graph.ParseDirected(string(data))
	}
	switch name {
	case "k4":
		return topo.CompleteBi(4, 1), nil
	case "k5":
		return topo.CompleteBi(5, 2), nil
	case "k7":
		return topo.CompleteBi(7, 2), nil
	case "fig1":
		return topo.Fig1a(), nil
	case "thin5":
		return topo.OneThinLink(5, 4, 5, 8, 1)
	case "circ8":
		return topo.Circulant(8, 1, 1, 2)
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
