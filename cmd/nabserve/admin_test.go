package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"nab"
	"nab/internal/admin"
	"nab/internal/topo"
)

// startAdminServer hosts a daemon with its admin endpoint, both on
// ephemeral ports, returning the server struct for drain-flag access.
func startAdminServer(t *testing.T, lenBytes int) (srv *server, addr, adminAddr string, shutdown func()) {
	t.Helper()
	sess, err := nab.Open(context.Background(), nab.Config{
		Graph: topo.CompleteBi(4, 1), Source: 1, F: 1,
		LenBytes: lenBytes, Seed: 7,
	}, nab.WithWindow(2))
	if err != nil {
		t.Fatal(err)
	}
	srv = &server{sess: sess, lenBytes: lenBytes, w: io.Discard}
	adm, err := admin.Serve("127.0.0.1:0", admin.Options{Checks: adminChecks(srv)})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.serve(l)
	}()
	return srv, l.Addr().String(), adm.Addr(), func() {
		l.Close()
		<-done
		adm.Close()
		sess.Close()
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminScrapesLiveMetrics is the e2e assertion of the observability
// layer: after a client streams broadcasts through the daemon, /metrics
// exposes a non-zero nab_commits_total (and the commit-latency histogram)
// in Prometheus text format, and /healthz reports ready.
func TestAdminScrapesLiveMetrics(t *testing.T) {
	const lenBytes, q = 16, 5
	_, addr, adminAddr, shutdown := startAdminServer(t, lenBytes)
	defer shutdown()

	var out strings.Builder
	if err := client(&out, addr, q, lenBytes, 42); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, "http://"+adminAddr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d:\n%s", code, body)
	}
	if !strings.Contains(body, "# HELP nab_commits_total") ||
		!strings.Contains(body, "# TYPE nab_commits_total counter") {
		t.Errorf("exposition lacks nab_commits_total metadata:\n%s", body)
	}
	commits := -1.0
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, "nab_commits_total "); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				t.Fatalf("unparsable sample %q: %v", line, err)
			}
			commits = f
		}
	}
	if commits <= 0 {
		t.Errorf("nab_commits_total = %v after a %d-request stream, want > 0", commits, q)
	}
	if !strings.Contains(body, `nab_commit_latency_seconds_bucket{le="+Inf"}`) {
		t.Errorf("exposition lacks the commit-latency histogram:\n%s", body)
	}

	code, body = httpGet(t, "http://"+adminAddr+"/healthz")
	if code != http.StatusOK {
		t.Errorf("/healthz status %d:\n%s", code, body)
	}
	for _, probe := range []string{"engine: ok", "draining: ok", "wal: ok"} {
		if !strings.Contains(body, probe) {
			t.Errorf("/healthz lacks %q:\n%s", probe, body)
		}
	}
}

// TestServeDrainingRejectsSecondClient pins the typed refusal: a client
// connecting while the daemon drains an abandoned stream gets a single
// {"error":"draining: ..."} frame (not a reset), and /healthz turns
// not-ready for the duration.
func TestServeDrainingRejectsSecondClient(t *testing.T) {
	const lenBytes = 16
	srv, addr, adminAddr, shutdown := startAdminServer(t, lenBytes)
	defer shutdown()

	srv.draining.Store(true)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := readReply(conn, lenBytes)
	conn.Close()
	if err != nil {
		t.Fatalf("refusal frame: %v", err)
	}
	if !strings.Contains(rep.Error, "draining") {
		t.Errorf("refusal error = %q, want a draining refusal", rep.Error)
	}
	if code, body := httpGet(t, "http://"+adminAddr+"/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "draining") {
		t.Errorf("/healthz while draining: status %d body %q, want 503 mentioning draining", code, body)
	}

	// Drain over: the next client streams normally.
	srv.draining.Store(false)
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := bytes.Repeat([]byte{0xcd}, lenBytes)
	if err := writeFrame(conn, in); err != nil {
		t.Fatal(err)
	}
	rep, err = readReply(conn, lenBytes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Error != "" || !bytes.Equal(rep.Output, in) {
		t.Errorf("post-drain reply error=%q output=%x, want echo of %x", rep.Error, rep.Output, in)
	}
}

// TestDrainFlagFollowsAbandonedStream drives the real drain path: a
// client submits, then slams the connection shut (RST via SetLinger(0))
// so the bridge switches to draining its outstanding commits.
func TestDrainFlagFollowsAbandonedStream(t *testing.T) {
	const lenBytes, q = 16, 4
	srv, addr, _, shutdown := startAdminServer(t, lenBytes)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < q; i++ {
		if err := writeFrame(conn, bytes.Repeat([]byte{byte(i + 1)}, lenBytes)); err != nil {
			t.Fatal(err)
		}
	}
	conn.(*net.TCPConn).SetLinger(0) // abort: reset instead of FIN
	conn.Close()

	// The drain must end on its own (all outstanding commits consumed),
	// and the daemon must accept a fresh client afterwards.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	in := bytes.Repeat([]byte{0xee}, lenBytes)
	for {
		if err := writeFrame(conn2, in); err != nil {
			t.Fatal(err)
		}
		rep, err := readReply(conn2, lenBytes)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Error == "" {
			if !bytes.Equal(rep.Output, in) {
				t.Fatalf("post-drain output %x, want %x", rep.Output, in)
			}
			break
		}
		if !strings.Contains(rep.Error, "draining") {
			t.Fatalf("unexpected refusal %q", rep.Error)
		}
		// Refused mid-drain: reconnect until the drain completes.
		conn2.Close()
		conn2, err = net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
	}
	if srv.draining.Load() {
		t.Error("draining flag still set after the drain completed")
	}
}
