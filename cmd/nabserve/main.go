// Command nabserve hosts a pipelined NAB runtime as a daemon: clients
// connect over TCP, stream framed broadcast requests, and receive one
// framed reply per committed instance, in order. Arriving requests are
// batched into the runtime's pipeline window, so a streaming client keeps
// W instances in flight automatically.
//
// Server:
//
//	nabserve -listen 127.0.0.1:7012 -topo k7 -f 2 -len 64 -window 4
//
// Add -net-transport to run node-to-node traffic over loopback TCP links
// (wire-framed) instead of the in-process bus, and -adversary n=strategy
// (repeatable: flip, coded, alarm, crash, random) to host faulty nodes.
//
// Client (sends -q framed requests, prints the replies):
//
//	nabserve -connect 127.0.0.1:7012 -len 64 -q 16
//
// Wire protocol: a request is a 4-byte big-endian length followed by the
// broadcast input (exactly -len bytes); a reply is a 4-byte big-endian
// length followed by a JSON object {instance, output, mismatch, phase3,
// modelTime}. The connection closes after an invalid request.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"

	"nab/internal/adversary"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/runtime"
	"nab/internal/topo"
	"nab/internal/transport"
)

type adversaryFlags map[graph.NodeID]core.Adversary

func (af adversaryFlags) String() string { return fmt.Sprint(map[graph.NodeID]core.Adversary(af)) }

func (af adversaryFlags) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want node=strategy, got %q", s)
	}
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad node id %q: %w", parts[0], err)
	}
	var a core.Adversary
	switch parts[1] {
	case "flip":
		a = &adversary.BlockFlipper{}
	case "coded":
		a = &adversary.CodedCorruptor{}
	case "alarm":
		a = adversary.FalseAlarm{}
	case "crash":
		a = adversary.Crash{}
	case "random":
		a = &adversary.Random{RNG: rand.New(rand.NewSource(int64(id)))}
	default:
		return fmt.Errorf("unknown strategy %q", parts[1])
	}
	af[graph.NodeID(id)] = a
	return nil
}

// reply is the JSON body of one response frame.
type reply struct {
	Instance int    `json:"instance"`
	Output   []byte `json:"output"`
	Mismatch bool   `json:"mismatch"`
	Phase3   bool   `json:"phase3"`
	// ModelTime is the instance's cut-through duration in time units.
	ModelTime float64 `json:"modelTime"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nabserve:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("nabserve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7012", "serve on this address")
	connect := fs.String("connect", "", "client mode: stream requests to this server")
	topoName := fs.String("topo", "k7", "built-in topology: k4, k5, k7, thin5, circ8")
	file := fs.String("file", "", "topology file (overrides -topo)")
	source := fs.Int("source", 1, "source node id")
	f := fs.Int("f", 1, "fault bound")
	lenBytes := fs.Int("len", 64, "input length in bytes")
	window := fs.Int("window", 4, "pipeline window (instances in flight)")
	seed := fs.Int64("seed", 1, "seed for coding matrices (server) / inputs (client)")
	q := fs.Int("q", 8, "client mode: number of requests to stream")
	netTransport := fs.Bool("net-transport", false, "run node links over loopback TCP instead of the in-process bus")
	advs := adversaryFlags{}
	fs.Var(advs, "adversary", "node=strategy (repeatable): flip, coded, alarm, crash, random")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *connect != "" {
		return client(w, *connect, *q, *lenBytes, *seed)
	}

	g, err := loadGraph(*file, *topoName)
	if err != nil {
		return err
	}
	cfg := runtime.Config{
		Config: core.Config{
			Graph: g, Source: graph.NodeID(*source), F: *f,
			LenBytes: *lenBytes, Seed: *seed, Adversaries: advs,
		},
		Window: *window,
	}
	if *netTransport {
		tr, err := transport.NewTCP(g)
		if err != nil {
			return err
		}
		cfg.Transport = tr
	}
	rt, err := runtime.New(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Fprintf(w, "nabserve: listening on %s (topo %s, n=%d, f=%d, len=%d, window=%d)\n",
		l.Addr(), *topoName, g.NumNodes(), *f, *lenBytes, *window)
	return serve(l, rt, *lenBytes, *window, w)
}

// serve accepts clients one at a time: NAB broadcasts a single global
// instance sequence, so concurrent clients would interleave their requests
// into one stream anyway.
func serve(l net.Listener, rt *runtime.Runtime, lenBytes, window int, w io.Writer) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return nil // listener closed: clean shutdown
		}
		if err := session(conn, rt, lenBytes, window); err != nil && err != io.EOF {
			fmt.Fprintf(w, "nabserve: session %s: %v\n", conn.RemoteAddr(), err)
		}
		conn.Close()
	}
}

// session streams one client's requests through the runtime. A reader
// goroutine feeds a queue; the pipeline drains it in batches up to 4x the
// window, so the runtime always has speculative work available.
func session(conn net.Conn, rt *runtime.Runtime, lenBytes, window int) error {
	requests := make(chan []byte, 4*window)
	readErr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done) // unblock the reader if the session exits early
	go func() {
		defer close(requests)
		for {
			in, err := readFrame(conn, lenBytes)
			if err != nil {
				readErr <- err
				return
			}
			select {
			case requests <- in:
			case <-done:
				return
			}
		}
	}()

	for in := range requests {
		batch := drainInto([][]byte{in}, requests, 4*window)
		// Replies stream per committed instance, so the first request of
		// a large batch is not held back by the rest of the pipeline.
		_, err := rt.RunFunc(batch, func(ir *core.InstanceResult) error {
			return writeReply(conn, &reply{
				Instance:  ir.K,
				Output:    agreedOutput(ir),
				Mismatch:  ir.Mismatch,
				Phase3:    ir.Phase3,
				ModelTime: ir.TotalTime(),
			})
		})
		if err != nil {
			return err
		}
	}
	select {
	case err := <-readErr:
		return err
	default:
		return nil
	}
}

// drainInto appends queued requests without blocking, up to max.
func drainInto(batch [][]byte, ch chan []byte, max int) [][]byte {
	for len(batch) < max {
		select {
		case more, ok := <-ch:
			if !ok {
				return batch
			}
			batch = append(batch, more)
		default:
			return batch
		}
	}
	return batch
}

// agreedOutput picks the (common) decision of the fault-free nodes.
func agreedOutput(ir *core.InstanceResult) []byte {
	var best graph.NodeID
	var out []byte
	for v, val := range ir.Outputs {
		if out == nil || v < best {
			best, out = v, val
		}
	}
	return out
}

// client streams q seeded random inputs and prints each reply.
func client(w io.Writer, addr string, q, lenBytes int, seed int64) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	rng := rand.New(rand.NewSource(seed))
	go func() {
		for i := 0; i < q; i++ {
			in := make([]byte, lenBytes)
			rng.Read(in)
			if err := writeFrame(conn, in); err != nil {
				return
			}
		}
	}()
	for i := 0; i < q; i++ {
		rep, err := readReply(conn, lenBytes)
		if err != nil {
			return fmt.Errorf("reply %d: %w", i+1, err)
		}
		fmt.Fprintf(w, "instance %d: %d bytes, mismatch=%v phase3=%v modelTime=%.2f\n",
			rep.Instance, len(rep.Output), rep.Mismatch, rep.Phase3, rep.ModelTime)
	}
	return nil
}

func readFrame(r io.Reader, lenBytes int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int(n) != lenBytes {
		return nil, fmt.Errorf("request of %d bytes, want %d", n, lenBytes)
	}
	in := make([]byte, n)
	if _, err := io.ReadFull(r, in); err != nil {
		return nil, err
	}
	return in, nil
}

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func writeReply(w io.Writer, rep *reply) error {
	raw, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	return writeFrame(w, raw)
}

func readReply(r io.Reader, lenBytes int) (*reply, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	// The JSON reply carries the output base64-encoded, so its size
	// scales with the configured input length.
	if limit := uint32(1<<16 + 2*lenBytes); n > limit {
		return nil, fmt.Errorf("oversized reply (%d bytes, limit %d)", n, limit)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, err
	}
	rep := &reply{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

func loadGraph(file, name string) (*graph.Directed, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return graph.ParseDirected(string(data))
	}
	switch name {
	case "k4":
		return topo.CompleteBi(4, 1), nil
	case "k5":
		return topo.CompleteBi(5, 2), nil
	case "k7":
		return topo.CompleteBi(7, 2), nil
	case "thin5":
		return topo.OneThinLink(5, 4, 5, 8, 1)
	case "circ8":
		return topo.Circulant(8, 1, 1, 2)
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
