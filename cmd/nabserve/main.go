// Command nabserve hosts a NAB broadcast session as a daemon: clients
// connect over TCP, stream framed broadcast requests, and receive one
// framed reply per committed instance, in order. Requests feed the
// session's submission queue directly, so a streaming client keeps the
// engine's pipeline window full automatically — no batching layer in
// between.
//
// Server:
//
//	nabserve -listen 127.0.0.1:7012 -topo k7 -f 2 -len 64 -window 4
//
// Add -net-transport to run node-to-node traffic over loopback TCP links
// (wire-framed) instead of the in-process bus, and -adversary n=strategy
// (repeatable: flip, coded, alarm, crash, random) to host faulty nodes.
// Add -wal DIR to make the daemon durable: accepted requests and commits
// are write-ahead logged, and a daemon killed mid-stream resumes on
// restart — dispute state, instance numbering and uncommitted requests
// included — instead of starting the broadcast sequence over. Add
// -snapshot-interval N to snapshot the engine state every N commits and
// compact the log behind it, so disk use and restart replay stay
// bounded by the live suffix no matter how long the daemon runs. Add
// -admin ADDR to expose /metrics (Prometheus text exposition), /healthz
// (engine liveness, drain state, WAL sync lag) and /debug/pprof on a
// private HTTP endpoint; durable daemons additionally mount
// POST /snapshot, which forces a snapshot + compaction on demand — the
// "drain, snapshot, restart" step of a rolling restart. Add -flight N
// to arm the flight recorder: GET /debug/flight downloads the ring as a
// binary dump for tools/nabtrace, and anomalies (dispute barriers,
// digest tripwires) drop black-box dumps next to the WAL.
//
// Client (sends -q framed requests, prints the replies):
//
//	nabserve -connect 127.0.0.1:7012 -len 64 -q 16
//
// Wire protocol: a request is a 4-byte big-endian length followed by the
// broadcast input (exactly -len bytes); a reply is a 4-byte big-endian
// length followed by a JSON object {instance, output, mismatch, phase3,
// modelTime}. The connection closes after an invalid request. A client
// connecting while the daemon still drains a disconnected client's
// outstanding commits gets a single {"error":"draining: ..."} reply and
// the connection closes.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"nab"
	"nab/internal/admin"
	"nab/internal/adversary"
	"nab/internal/graph"
	"nab/internal/topo"
)

type adversaryFlags map[nab.NodeID]nab.Adversary

func (af adversaryFlags) String() string { return fmt.Sprint(map[nab.NodeID]nab.Adversary(af)) }

func (af adversaryFlags) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want node=strategy, got %q", s)
	}
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad node id %q: %w", parts[0], err)
	}
	var a nab.Adversary
	switch parts[1] {
	case "flip":
		a = &adversary.BlockFlipper{}
	case "coded":
		a = &adversary.CodedCorruptor{}
	case "alarm":
		a = adversary.FalseAlarm{}
	case "crash":
		a = adversary.Crash{}
	case "random":
		// The instance-scoped (seeded) form: deterministic under any
		// pipeline window, unlike the deprecated shared-stream adversary.
		a = &adversary.Random{Seed: int64(id)}
	default:
		return fmt.Errorf("unknown strategy %q", parts[1])
	}
	af[nab.NodeID(id)] = a
	return nil
}

// reply is the JSON body of one response frame.
type reply struct {
	Instance int    `json:"instance"`
	Output   []byte `json:"output"`
	Mismatch bool   `json:"mismatch"`
	Phase3   bool   `json:"phase3"`
	// ModelTime is the instance's cut-through duration in time units.
	ModelTime float64 `json:"modelTime"`
	// Error is set on a refusal frame — e.g. a client connecting while
	// the daemon drains a previous client's abandoned commits — after
	// which the connection closes.
	Error string `json:"error,omitempty"`
}

// errDraining is the typed refusal a client receives when it connects
// while the daemon is still flushing commits a disconnected client left
// outstanding. It also surfaces on /healthz as not-ready.
var errDraining = errors.New("draining: flushing commits a disconnected client left outstanding")

// maxHealthyWALLag is the /healthz threshold on appended-but-unsynced
// WAL records; the group-commit syncer keeps it near zero in a healthy
// daemon.
const maxHealthyWALLag = 4096

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nabserve:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("nabserve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7012", "serve on this address")
	connect := fs.String("connect", "", "client mode: stream requests to this server")
	topoName := fs.String("topo", "k7", "built-in topology: k4, k5, k7, thin5, circ8")
	file := fs.String("file", "", "topology file (overrides -topo)")
	source := fs.Int("source", 1, "source node id")
	f := fs.Int("f", 1, "fault bound")
	lenBytes := fs.Int("len", 64, "input length in bytes")
	window := fs.Int("window", 4, "pipeline window (instances in flight)")
	seed := fs.Int64("seed", 1, "seed for coding matrices (server) / inputs (client)")
	q := fs.Int("q", 8, "client mode: number of requests to stream")
	netTransport := fs.Bool("net-transport", false, "run node links over loopback TCP instead of the in-process bus")
	walDir := fs.String("wal", "", "durable WAL directory: accepted requests and commits are logged there, and a restarted daemon resumes the stream (dispute state included) instead of starting over")
	snapEvery := fs.Int("snapshot-interval", 0, "write a full engine-state snapshot every N commits and compact the WAL behind it, bounding disk use and restart replay to the live suffix (0 = default; requires -wal)")
	adminAddr := fs.String("admin", "", "serve /metrics (Prometheus text), /healthz, /debug/pprof and POST /snapshot (durable daemons) on this address")
	flightCap := fs.Int("flight", 0, "arm the flight recorder with a ring of N events (rounded up to a power of two); dump it via /debug/flight, black-box dumps land in the WAL dir on anomalies")
	advs := adversaryFlags{}
	fs.Var(advs, "adversary", "node=strategy (repeatable): flip, coded, alarm, crash, random")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *connect != "" {
		return client(w, *connect, *q, *lenBytes, *seed)
	}

	g, err := loadGraph(*file, *topoName)
	if err != nil {
		return err
	}
	cfg := nab.Config{
		Graph: g, Source: nab.NodeID(*source), F: *f,
		LenBytes: *lenBytes, Seed: *seed, Adversaries: advs,
	}
	opts := []nab.SessionOption{nab.WithWindow(*window)}
	if *flightCap > 0 {
		opts = append(opts, nab.WithFlightRecorder(*flightCap))
	}
	if *snapEvery != 0 && *walDir == "" {
		return fmt.Errorf("-snapshot-interval requires -wal")
	}
	if *walDir != "" {
		opts = append(opts, nab.Recover(*walDir))
		if *snapEvery != 0 {
			opts = append(opts, nab.WithSnapshotInterval(*snapEvery))
		}
	}
	if *netTransport {
		tr, err := nab.NewTCPTransport(g)
		if err != nil {
			return err
		}
		opts = append(opts, nab.WithTransport(tr))
	}
	sess, err := nab.Open(context.Background(), cfg, opts...)
	if err != nil {
		return err
	}
	defer sess.Close()

	srv := &server{sess: sess, lenBytes: *lenBytes, w: w}
	if *adminAddr != "" {
		admOpts := admin.Options{Checks: adminChecks(srv)}
		if *walDir != "" {
			// POST /snapshot forces a snapshot + compaction now — the
			// "drain, snapshot, restart" step of a rolling restart, so the
			// next boot replays only the live suffix.
			admOpts.Actions = []admin.Action{{Path: "/snapshot", Run: func() (string, error) {
				info, err := sess.Snapshot()
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("snapshot at instance %d (gen %d, digest %016x)", info.K, info.Gen, info.Digest), nil
			}}}
		}
		adm, err := admin.Serve(*adminAddr, admOpts)
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Fprintf(w, "nabserve: admin endpoints on http://%s (/metrics, /healthz, /debug/pprof)\n", adm.Addr())
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Fprintf(w, "nabserve: listening on %s (topo %s, n=%d, f=%d, len=%d, window=%d)\n",
		l.Addr(), *topoName, g.NumNodes(), *f, *lenBytes, *window)
	return srv.serve(l)
}

// adminChecks is the daemon's /healthz probe set: engine liveness, the
// drain flag (a not-ready daemon still flushing an abandoned client's
// commits), and WAL sync lag.
func adminChecks(srv *server) []admin.Check {
	return []admin.Check{
		{Name: "engine", Probe: srv.sess.Err},
		{Name: "draining", Probe: func() error {
			if srv.draining.Load() {
				return errDraining
			}
			return nil
		}},
		{Name: "wal", Probe: func() error {
			if lag := srv.sess.WALSyncLag(); lag > maxHealthyWALLag {
				return fmt.Errorf("sync lag %d records", lag)
			}
			return nil
		}},
	}
}

// server is the daemon's accept-loop state: the shared session plus the
// drain flag the admin /healthz probe and the accept loop both read.
type server struct {
	sess     *nab.Session
	lenBytes int
	w        io.Writer
	// draining is set while a disconnected client's outstanding commits
	// are still being consumed; a client connecting in that window gets a
	// typed errDraining reply instead of a silent queue (or a reset when
	// the daemon dies mid-drain).
	draining atomic.Bool
}

// serve handles clients one at a time: NAB broadcasts a single global
// instance sequence, so concurrent clients would interleave their requests
// into one stream anyway. The session — and with it the engine's dispute
// state — lives across connections. The accept loop stays live while a
// session drains, so a premature second client is refused with a typed
// error frame instead of hanging in the backlog.
func serve(l net.Listener, sess *nab.Session, lenBytes int, w io.Writer) error {
	srv := &server{sess: sess, lenBytes: lenBytes, w: w}
	return srv.serve(l)
}

func (s *server) serve(l net.Listener) error {
	conns := make(chan net.Conn)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(conns)
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed: clean shutdown
			}
			if s.draining.Load() {
				writeReply(conn, &reply{Error: errDraining.Error()})
				conn.Close()
				continue
			}
			select {
			case conns <- conn:
			case <-done:
				conn.Close()
				return
			}
		}
	}()
	for conn := range conns {
		if err := s.session(conn); err != nil && err != io.EOF {
			fmt.Fprintf(s.w, "nabserve: session %s: %v\n", conn.RemoteAddr(), err)
		}
		conn.Close()
		if err := s.sess.Err(); err != nil {
			return err // the engine died; stop accepting
		}
	}
	return nil
}

// session bridges one client connection onto the shared Session: a reader
// goroutine submits each framed request (blocking when the pipeline is
// saturated — the session's backpressure is the connection's flow
// control), while the main loop writes one reply per commit as it lands.
// Every submission this connection made is matched with a consumed commit
// before returning, so an early disconnect cannot leak replies into the
// next connection.
func (s *server) session(conn net.Conn) error {
	sess, lenBytes := s.sess, s.lenBytes
	ctx := context.Background()
	defer s.draining.Store(false)
	// events carries one nil per accepted submission, then the reader's
	// terminal error (io.EOF for a clean disconnect). done releases a
	// reader whose event nobody will consume (early bridge exit).
	events := make(chan error, 64)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(events)
		for {
			in, err := readFrame(conn, lenBytes)
			if err == nil {
				_, err = sess.Submit(ctx, in)
			}
			select {
			case events <- err:
			case <-done:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	outstanding, open := 0, true
	var firstErr error
	for open || outstanding > 0 {
		var evCh chan error
		if open {
			evCh = events
		}
		var cmCh <-chan nab.Commit
		if outstanding > 0 {
			cmCh = sess.Commits()
		}
		select {
		case err := <-evCh:
			if err != nil {
				open = false
				// A clean disconnect (EOF) of the read side still gets
				// replies for everything it submitted — the client may
				// have only half-closed. Real errors switch to draining.
				if err != io.EOF && firstErr == nil {
					firstErr = err
					if outstanding > 0 {
						s.draining.Store(true)
					}
				}
				continue
			}
			outstanding++
		case c, ok := <-cmCh:
			if !ok {
				// The session ended; no further commits will come.
				if firstErr == nil {
					firstErr = sess.Err()
				}
				return firstErr
			}
			if c.Replayed || c.Seq <= sess.RecoveredSeq() {
				// A -wal recovery re-delivers pre-restart commits, and
				// the recovered-but-uncommitted backlog re-executes with
				// fresh commits at or below the recovered sequence; both
				// answer a previous incarnation's requests, not this
				// connection's.
				continue
			}
			outstanding--
			if firstErr != nil {
				continue // draining only; the client is gone
			}
			if err := writeReply(conn, &reply{
				Instance:  c.Result.K,
				Output:    agreedOutput(c.Result),
				Mismatch:  c.Result.Mismatch,
				Phase3:    c.Result.Phase3,
				ModelTime: c.Result.TotalTime(),
			}); err != nil {
				firstErr = err
				if outstanding > 0 {
					s.draining.Store(true)
				}
				// Unblock a reader stuck in readFrame so the drain ends.
				conn.Close()
			}
		}
	}
	return firstErr
}

// agreedOutput picks the (common) decision of the fault-free nodes.
func agreedOutput(ir *nab.InstanceResult) []byte {
	var best nab.NodeID
	var out []byte
	for v, val := range ir.Outputs {
		if out == nil || v < best {
			best, out = v, val
		}
	}
	return out
}

// client streams q seeded random inputs and prints each reply.
func client(w io.Writer, addr string, q, lenBytes int, seed int64) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	rng := rand.New(rand.NewSource(seed))
	go func() {
		for i := 0; i < q; i++ {
			in := make([]byte, lenBytes)
			rng.Read(in)
			if err := writeFrame(conn, in); err != nil {
				return
			}
		}
	}()
	for i := 0; i < q; i++ {
		rep, err := readReply(conn, lenBytes)
		if err != nil {
			return fmt.Errorf("reply %d: %w", i+1, err)
		}
		if rep.Error != "" {
			return fmt.Errorf("server refused: %s", rep.Error)
		}
		fmt.Fprintf(w, "instance %d: %d bytes, mismatch=%v phase3=%v modelTime=%.2f\n",
			rep.Instance, len(rep.Output), rep.Mismatch, rep.Phase3, rep.ModelTime)
	}
	return nil
}

func readFrame(r io.Reader, lenBytes int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int(n) != lenBytes {
		return nil, fmt.Errorf("request of %d bytes, want %d", n, lenBytes)
	}
	in := make([]byte, n)
	if _, err := io.ReadFull(r, in); err != nil {
		return nil, err
	}
	return in, nil
}

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func writeReply(w io.Writer, rep *reply) error {
	raw, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	return writeFrame(w, raw)
}

func readReply(r io.Reader, lenBytes int) (*reply, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	// The JSON reply carries the output base64-encoded, so its size
	// scales with the configured input length.
	if limit := uint32(1<<16 + 2*lenBytes); n > limit {
		return nil, fmt.Errorf("oversized reply (%d bytes, limit %d)", n, limit)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, err
	}
	rep := &reply{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

func loadGraph(file, name string) (*graph.Directed, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return graph.ParseDirected(string(data))
	}
	switch name {
	case "k4":
		return topo.CompleteBi(4, 1), nil
	case "k5":
		return topo.CompleteBi(5, 2), nil
	case "k7":
		return topo.CompleteBi(7, 2), nil
	case "thin5":
		return topo.OneThinLink(5, 4, 5, 8, 1)
	case "circ8":
		return topo.Circulant(8, 1, 1, 2)
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
