package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"strings"
	"testing"

	"nab"
	"nab/internal/adversary"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/topo"
)

// startServer hosts a session-backed server on an ephemeral port.
func startServer(t *testing.T, lenBytes, window int, advs map[graph.NodeID]core.Adversary) (addr string, shutdown func()) {
	t.Helper()
	sess, err := nab.Open(context.Background(), nab.Config{
		Graph: topo.CompleteBi(4, 1), Source: 1, F: 1,
		LenBytes: lenBytes, Seed: 7, Adversaries: advs,
	}, nab.WithWindow(window))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		serve(l, sess, lenBytes, io.Discard)
	}()
	return l.Addr().String(), func() {
		l.Close()
		<-done
		sess.Close()
	}
}

func TestServeEchoesBroadcasts(t *testing.T) {
	const lenBytes, q = 16, 6
	addr, shutdown := startServer(t, lenBytes, 2, nil)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	inputs := make([][]byte, q)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{byte(i + 1)}, lenBytes)
		if err := writeFrame(conn, inputs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < q; i++ {
		rep, err := readReply(conn, lenBytes)
		if err != nil {
			t.Fatalf("reply %d: %v", i+1, err)
		}
		if rep.Instance != i+1 {
			t.Errorf("reply %d: instance %d", i+1, rep.Instance)
		}
		if !bytes.Equal(rep.Output, inputs[i]) {
			t.Errorf("reply %d: output %x, want %x", i+1, rep.Output, inputs[i])
		}
		if rep.Mismatch || rep.Phase3 {
			t.Errorf("reply %d: unexpected mismatch/phase3", i+1)
		}
	}
}

func TestServeSurvivesAdversaryAndReconnect(t *testing.T) {
	const lenBytes = 8
	addr, shutdown := startServer(t, lenBytes, 3, map[graph.NodeID]core.Adversary{4: adversary.FalseAlarm{}})
	defer shutdown()

	// First client: the alarmer forces dispute control; outputs must
	// still be the broadcast values.
	var out strings.Builder
	if err := client(&out, addr, 4, lenBytes, 42); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "instance "); got != 4 {
		t.Errorf("client printed %d replies, want 4:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "phase3=true") {
		t.Errorf("expected a dispute-control instance:\n%s", out.String())
	}
	// Second client on the same daemon: the instance sequence continues.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := bytes.Repeat([]byte{0xaa}, lenBytes)
	if err := writeFrame(conn, in); err != nil {
		t.Fatal(err)
	}
	rep, err := readReply(conn, lenBytes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instance != 5 {
		t.Errorf("second client got instance %d, want 5", rep.Instance)
	}
	if !bytes.Equal(rep.Output, in) {
		t.Errorf("second client output %x, want %x", rep.Output, in)
	}
}

func TestClientModeViaRun(t *testing.T) {
	addr, shutdown := startServer(t, 64, 2, nil)
	defer shutdown()
	var out strings.Builder
	if err := run([]string{"-connect", addr, "-len", "64", "-q", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "instance "); got != 3 {
		t.Errorf("run client printed %d replies, want 3:\n%s", got, out.String())
	}
}

func TestBadRequestClosesSession(t *testing.T) {
	addr, shutdown := startServer(t, 16, 2, nil)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Wrong length: the server drops the session.
	if err := writeFrame(conn, []byte("short")); err != nil {
		t.Fatal(err)
	}
	if _, err := readReply(conn, 16); err == nil {
		t.Error("expected the session to close on a malformed request")
	}
}

func TestFlagsAndErrors(t *testing.T) {
	af := adversaryFlags{}
	for _, good := range []string{"3=flip", "2=coded", "5=alarm", "4=crash", "6=random"} {
		if err := af.Set(good); err != nil {
			t.Errorf("%q: %v", good, err)
		}
	}
	if len(af) != 5 || af.String() == "" {
		t.Errorf("parsed %d adversaries", len(af))
	}
	for _, bad := range []string{"3", "x=flip", "3=unknown"} {
		if err := af.Set(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if err := run([]string{"-topo", "nope"}, io.Discard); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-topo", "k4", "-f", "2"}, io.Discard); err == nil {
		t.Error("f too large accepted")
	}
	if err := run([]string{"-connect", "127.0.0.1:1", "-q", "1"}, io.Discard); err == nil {
		t.Error("client connected to a dead address")
	}
}

// TestServeHalfCloseFlushesReplies pins the wire contract for clients
// that write all requests, half-close the connection, then read: every
// accepted request still gets its reply.
func TestServeHalfCloseFlushesReplies(t *testing.T) {
	const lenBytes, q = 16, 3
	addr, shutdown := startServer(t, lenBytes, 2, nil)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < q; i++ {
		if err := writeFrame(conn, bytes.Repeat([]byte{byte(i + 1)}, lenBytes)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < q; i++ {
		rep, err := readReply(conn, lenBytes)
		if err != nil {
			t.Fatalf("reply %d after half-close: %v", i+1, err)
		}
		if rep.Instance != i+1 {
			t.Errorf("reply %d: instance %d", i+1, rep.Instance)
		}
	}
}

// TestServeDurableRestart restarts the daemon on its WAL: the broadcast
// sequence — dispute state and instance numbering — must resume where
// the killed incarnation left it, and replayed commits must not leak
// into the new connection's reply stream.
func TestServeDurableRestart(t *testing.T) {
	const lenBytes = 8
	dir := t.TempDir()
	open := func() (*nab.Session, string, func()) {
		sess, err := nab.Open(context.Background(), nab.Config{
			Graph: topo.CompleteBi(4, 1), Source: 1, F: 1,
			LenBytes: lenBytes, Seed: 7,
			Adversaries: map[graph.NodeID]core.Adversary{4: adversary.FalseAlarm{}},
		}, nab.WithWindow(2), nab.Recover(dir))
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			serve(l, sess, lenBytes, io.Discard)
		}()
		return sess, l.Addr().String(), func() {
			l.Close()
			<-done
			sess.Close()
		}
	}

	sess1, addr1, shutdown1 := open()
	var out strings.Builder
	if err := client(&out, addr1, 3, lenBytes, 42); err != nil {
		t.Fatal(err)
	}
	if sess1.RecoveredSeq() != 0 {
		t.Errorf("fresh daemon recovered seq %d", sess1.RecoveredSeq())
	}
	shutdown1()

	sess2, addr2, shutdown2 := open()
	defer shutdown2()
	if got := int(sess2.RecoveredSeq()); got != 3 {
		t.Errorf("restarted daemon recovered seq %d, want 3", got)
	}
	conn, err := net.Dial("tcp", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := bytes.Repeat([]byte{0xbb}, lenBytes)
	if err := writeFrame(conn, in); err != nil {
		t.Fatal(err)
	}
	rep, err := readReply(conn, lenBytes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instance != 4 {
		t.Errorf("post-restart reply is instance %d, want 4 (sequence must resume, replayed commits must not leak)", rep.Instance)
	}
	if !bytes.Equal(rep.Output, in) {
		t.Errorf("post-restart output %x, want %x", rep.Output, in)
	}
}
