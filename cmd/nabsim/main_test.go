package main

import "testing"

func TestRunCleanAndAdversarial(t *testing.T) {
	if err := run([]string{"-topo", "k4", "-q", "2", "-len", "8"}); err != nil {
		t.Errorf("clean: %v", err)
	}
	if err := run([]string{"-topo", "k5", "-q", "2", "-len", "8", "-adversary", "4=flip"}); err != nil {
		t.Errorf("adversarial: %v", err)
	}
}

func TestAdversaryFlagParsing(t *testing.T) {
	af := adversaryFlags{}
	for _, good := range []string{"3=flip", "2=coded", "5=alarm", "4=crash", "6=random"} {
		if err := af.Set(good); err != nil {
			t.Errorf("%q: %v", good, err)
		}
	}
	if len(af) != 5 {
		t.Errorf("parsed %d adversaries", len(af))
	}
	if af.String() == "" {
		t.Error("String empty")
	}
	for _, bad := range []string{"3", "x=flip", "3=unknown"} {
		if err := af.Set(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-topo", "nope"}); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-topo", "k4", "-f", "2"}); err == nil {
		t.Error("f too large accepted")
	}
	if err := run([]string{"-file", "/does/not/exist"}); err == nil {
		t.Error("missing file accepted")
	}
}
