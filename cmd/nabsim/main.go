// Command nabsim runs NAB instances on a topology and prints per-phase
// timing, dispute-control activity and throughput.
//
// Usage:
//
//	nabsim -topo k7 -f 2 -q 8 -len 256 -adversary 3=flip -adversary 5=alarm
//
// Adversary strategies: flip (Phase-1 corruption), coded (equality-check
// corruption), alarm (always announce MISMATCH), crash (silent), random.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"nab/internal/adversary"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/texttab"
	"nab/internal/topo"
)

type adversaryFlags map[graph.NodeID]core.Adversary

func (af adversaryFlags) String() string { return fmt.Sprint(map[graph.NodeID]core.Adversary(af)) }

func (af adversaryFlags) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want node=strategy, got %q", s)
	}
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad node id %q: %w", parts[0], err)
	}
	var a core.Adversary
	switch parts[1] {
	case "flip":
		a = &adversary.BlockFlipper{}
	case "coded":
		a = &adversary.CodedCorruptor{}
	case "alarm":
		a = adversary.FalseAlarm{}
	case "crash":
		a = adversary.Crash{}
	case "random":
		// The instance-scoped (seeded) form: reproducible regardless of
		// execution engine, unlike the deprecated shared-stream adversary.
		a = &adversary.Random{Seed: int64(id)}
	default:
		return fmt.Errorf("unknown strategy %q", parts[1])
	}
	af[graph.NodeID(id)] = a
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nabsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nabsim", flag.ContinueOnError)
	topoName := fs.String("topo", "k4", "built-in topology: k4, k5, k7, thin5, circ8")
	file := fs.String("file", "", "topology file (overrides -topo)")
	source := fs.Int("source", 1, "source node id")
	f := fs.Int("f", 1, "fault bound")
	q := fs.Int("q", 4, "number of instances")
	lenBytes := fs.Int("len", 64, "input length in bytes")
	seed := fs.Int64("seed", 1, "seed for coding matrices and inputs")
	advs := adversaryFlags{}
	fs.Var(advs, "adversary", "node=strategy (repeatable): flip, coded, alarm, crash, random")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := loadGraph(*file, *topoName)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Graph: g, Source: graph.NodeID(*source), F: *f,
		LenBytes: *lenBytes, Seed: *seed, Adversaries: advs,
	}
	runner, err := core.NewRunner(cfg)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	t := texttab.New(fmt.Sprintf("NAB run: %d instances of %d bytes (f=%d)", *q, *lenBytes, *f),
		"k", "gamma", "rho", "phase1", "equality", "flags", "dispute", "total", "phase3", "new disputes", "new faulty")
	var rr core.RunResult
	rr.LenBits = 8 * *lenBytes
	for i := 0; i < *q; i++ {
		in := make([]byte, *lenBytes)
		rng.Read(in)
		ir, err := runner.RunInstance(in)
		if err != nil {
			return err
		}
		rr.Instances = append(rr.Instances, ir)
		t.Addf(ir.K, ir.Gamma, ir.Rho, ir.Phase1Time, ir.EqualityTime, ir.FlagTime,
			ir.DisputeTime, ir.TotalTime(), ir.Phase3, fmt.Sprint(ir.NewDisputes), fmt.Sprint(ir.NewFaulty))
	}
	fmt.Print(t)
	fmt.Printf("\nthroughput: %s bits/time unit over %d instances (%d dispute phases)\n",
		texttab.F(rr.Throughput()), *q, rr.DisputePhases())
	return nil
}

func loadGraph(file, name string) (*graph.Directed, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return graph.ParseDirected(string(data))
	}
	switch name {
	case "k4":
		return topo.CompleteBi(4, 1), nil
	case "k5":
		return topo.CompleteBi(5, 2), nil
	case "k7":
		return topo.CompleteBi(7, 2), nil
	case "thin5":
		return topo.OneThinLink(5, 4, 5, 8, 1)
	case "circ8":
		return topo.Circulant(8, 1, 1, 2)
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
