module nab

go 1.24
