// Heterogeneous WAN: the intro's motivation measured. On a 5-site WAN
// where one inter-site link is a thin 1-unit line and every other link
// carries 16 units, NAB routes around the thin link (its spanning-tree
// packing and equality check are capacity-aware) while classic
// capacity-oblivious Byzantine broadcast pays the thin-link price on its
// fixed routes. The gap widens as the fat links get faster.
package main

import (
	"fmt"
	"log"

	"nab"
)

const lenBytes = 1024

func main() {
	input := make([]byte, lenBytes)
	for i := range input {
		input[i] = byte(i)
	}

	fmt.Println("fatCap  NAB rate  classic-BB rate  advantage")
	for _, fatCap := range []int64{1, 4, 16, 64} {
		g, err := nab.OneThinLinkGraph(5, 4, 5, fatCap, 1)
		if err != nil {
			log.Fatal(err)
		}

		// Capacity-aware: NAB.
		runner, err := nab.NewRunner(nab.Config{
			Graph: g, Source: 1, F: 1, LenBytes: lenBytes, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := runner.Run([][]byte{input, input})
		if err != nil {
			log.Fatal(err)
		}
		nabRate := res.Throughput()

		// Capacity-oblivious: classic BB (EIG over fixed disjoint paths).
		base, err := nab.BaselineEIG(g, 1, 1, input)
		if err != nil {
			log.Fatal(err)
		}
		eigRate := base.Throughput(8 * lenBytes)

		fmt.Printf("%6d  %8.2f  %15.2f  %6.1fx\n", fatCap, nabRate, eigRate, nabRate/eigRate)
	}

	// The Theorem 2/3 view of the same network.
	g, err := nab.OneThinLinkGraph(5, 4, 5, 64, 1)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := nab.AnalyzeCapacity(g, 1, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat fatCap=64: gamma*=%d rho*=%.1f, capacity <= %.1f, NAB guarantees >= %.1f%% of it\n",
		rep.GammaStar, rep.RhoStar, rep.CapacityUB, 100*rep.Guarantee)
}
