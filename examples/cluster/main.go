// Multi-process cluster, condensed into one program: five peers — one
// per node of K5, each with its own TCP mesh endpoint exactly as five
// separate `nabnode` processes would have — broadcast a pipelined
// workload over real sockets while a scripted false alarmer forces
// dispute control, and every peer's committed outputs are checked
// against the single-process lockstep runner. Each peer runs behind the
// streaming Session API (the same facade nabnode uses). For the real
// thing, run
//
//	go run ./cmd/nabnode -spawn-local -topo k5 -f 1 -adversary 4=alarm
//
// which spawns genuine OS processes from the same cluster config format
// (add -wal DIR to make them crash-recoverable).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sync"

	"nab"
)

func main() {
	g := nab.CompleteGraph(5, 2)
	nodes := g.Nodes()

	// Held-listener reservation: the ports stay bound from here until
	// each peer's bootstrap adopts them — nothing can snipe them between.
	rsv, err := nab.ReserveClusterAddrs(len(nodes) + 1)
	if err != nil {
		log.Fatal(err)
	}
	defer rsv.Close()
	addrs := rsv.Addrs()
	cfg := &nab.ClusterConfig{
		Topology:  g.Marshal(),
		Source:    1,
		F:         1,
		LenBytes:  32,
		Seed:      2012,
		Window:    4,
		Instances: 12,
		CtrlAddr:  addrs[len(nodes)],
	}
	for i, v := range nodes {
		spec := nab.ClusterNodeSpec{ID: v, Addr: addrs[i]}
		if v == 4 {
			spec.Adversary = "alarm" // force a dispute phase and an exclusion
		}
		cfg.Nodes = append(cfg.Nodes, spec)
	}

	// Lockstep oracle for the same workload.
	coreCfg, err := cfg.CoreConfig()
	if err != nil {
		log.Fatal(err)
	}
	lock, err := nab.NewRunner(coreCfg)
	if err != nil {
		log.Fatal(err)
	}
	want, err := lock.Run(cfg.Inputs())
	if err != nil {
		log.Fatal(err)
	}

	// One streaming session per node, booted concurrently in any order:
	// every peer submits the identical deterministic workload and
	// collects its local nodes' commits.
	type peerOut struct {
		id  nab.NodeID
		res *nab.PipelineResult
		err error
	}
	ctx := context.Background()
	outs := make([]peerOut, len(nodes))
	var wg sync.WaitGroup
	for i, v := range nodes {
		wg.Add(1)
		go func(i int, v nab.NodeID) {
			defer wg.Done()
			fail := func(err error) { outs[i] = peerOut{id: v, err: err} }
			sess, err := nab.Open(ctx, nab.Config{},
				nab.WithCluster(cfg, v, nab.ClusterOptions{Reservation: rsv}))
			if err != nil {
				fail(err)
				return
			}
			defer sess.Close()
			go func() {
				for _, in := range cfg.Inputs() {
					if _, err := sess.Submit(ctx, in); err != nil {
						return
					}
				}
				sess.Drain(ctx)
			}()
			for range sess.Commits() {
			}
			if err := sess.Err(); err != nil {
				fail(err)
				return
			}
			outs[i] = peerOut{id: v, res: sess.Result()}
		}(i, v)
	}
	wg.Wait()

	agreed := 0
	for _, po := range outs {
		if po.err != nil {
			log.Fatalf("peer %d: %v", po.id, po.err)
		}
		for k, ir := range po.res.Instances {
			for v, out := range ir.Outputs {
				if !bytes.Equal(out, want.Instances[k].Outputs[v]) {
					log.Fatalf("instance %d: node %d diverged from lockstep", k+1, v)
				}
				agreed++
			}
		}
	}
	first := outs[0].res
	fmt.Printf("cluster of %d peers over TCP: %d instances committed, %d node-outputs byte-identical to lockstep\n",
		len(nodes), len(first.Instances), agreed)
	fmt.Printf("dispute phases: %d (alarmer excluded), replays at barriers: %d, wall %.0fms\n",
		countPhase3(first), first.Replays, first.Wall.Seconds()*1000)
}

func countPhase3(res *nab.PipelineResult) int {
	n := 0
	for _, ir := range res.Instances {
		if ir.Phase3 {
			n++
		}
	}
	return n
}
