// Dispute recovery: watch NAB's diminishing-graph mechanism neutralize a
// persistent attacker. Replica 3 corrupts every Phase-1 block it forwards
// and replica 5 shouts false alarms; across instances, dispute control
// identifies them, the instance graph G_k sheds their links and finally
// the nodes themselves, and throughput recovers to the fault-free rate.
package main

import (
	"fmt"
	"log"

	"nab"
)

func main() {
	g := nab.CompleteGraph(7, 2)
	const f = 2
	runner, err := nab.NewRunner(nab.Config{
		Graph:    g,
		Source:   1,
		F:        f,
		LenBytes: 64,
		Seed:     11,
		Adversaries: map[nab.NodeID]nab.Adversary{
			3: nab.BlockFlipperAdversary(),
			5: nab.FalseAlarmAdversary(),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	input := make([]byte, 64)
	copy(input, "the value under attack")
	disputePhases := 0
	for k := 1; k <= 8; k++ {
		res, err := runner.RunInstance(input)
		if err != nil {
			log.Fatal(err)
		}
		status := "clean"
		if res.Phase3 {
			disputePhases++
			status = fmt.Sprintf("dispute control: +disputes %v, +faulty %v", res.NewDisputes, res.NewFaulty)
		}
		gk := runner.InstanceGraph()
		fmt.Printf("instance %d: total=%9.1f  V_k+1=%d nodes, %2d links  [%s]\n",
			k, res.TotalTime(), gk.NumNodes(), gk.NumEdges(), status)
		for _, out := range res.Outputs {
			if string(out[:22]) != "the value under attack" {
				log.Fatalf("instance %d: validity violated: %q", k, out)
			}
		}
	}
	fmt.Printf("\nadversaries neutralized after %d dispute phases (bound f(f+1) = %d)\n",
		disputePhases, f*(f+1))
	fmt.Println("all instances satisfied agreement and validity")
}
