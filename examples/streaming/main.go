// Example streaming demonstrates the Session API — the streaming,
// engine-agnostic entrypoint: a producer submits payloads continuously
// with backpressure while a consumer handles commits as they land, the
// pipelined engine keeping W instances in flight in between. A scripted
// false-alarmer forces dispute control mid-stream, and the session keeps
// committing through the barrier replays.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"nab"
)

func main() {
	const (
		n        = 7
		f        = 2
		lenBytes = 48
		window   = 4
		payloads = 24
	)
	g := nab.CompleteGraph(n, 2)
	ctx := context.Background()

	sess, err := nab.Open(ctx, nab.Config{
		Graph: g, Source: 1, F: f, LenBytes: lenBytes, Seed: 1,
	},
		nab.WithWindow(window),
		nab.WithAdversary(4, nab.FalseAlarmAdversary()),       // MISMATCH every instance it survives
		nab.WithAdversary(6, nab.SeededRandomAdversary(2025)), // seeded: deterministic at any window
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Producer: an open-loop client. Submit blocks whenever the pipeline
	// is saturated — backpressure instead of an unbounded queue.
	go func() {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < payloads; i++ {
			p := make([]byte, lenBytes)
			rng.Read(p)
			if _, err := sess.Submit(ctx, p); err != nil {
				log.Printf("submit: %v", err)
				return
			}
		}
		sess.Drain(ctx) // no more submissions; commits keep flowing
	}()

	// Consumer: commits arrive strictly in Seq order, each carrying the
	// full instance report.
	disputes := 0
	for c := range sess.Commits() {
		if c.Result.Phase3 {
			disputes++
		}
		fmt.Printf("instance %2d: %d outputs, mismatch=%-5v phase3=%-5v modelTime=%.1f\n",
			c.Seq, len(c.Result.Outputs), c.Result.Mismatch, c.Result.Phase3, c.Result.TotalTime())
	}
	if err := sess.Err(); err != nil {
		log.Fatal(err)
	}

	res := sess.Result()
	fmt.Printf("\nstreamed %d instances in %.2fs (%.1f inst/s wall), %d dispute phases, %d barrier replays\n",
		len(res.Instances), res.Wall.Seconds(), res.InstancesPerSec(), disputes, res.Replays)
	fmt.Printf("final dispute set: %v\n", sess.Disputes())
}
