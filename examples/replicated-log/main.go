// Replicated log: the paper's motivating application ("replicated
// fault-tolerant state machines"). Five replicas agree on a sequence of
// fixed-size client commands by running one NAB instance per log entry;
// replica 4 is Byzantine and corrupts Phase-1 traffic, but every
// fault-free replica ends with an identical log equal to the commands the
// (honest) primary proposed.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nab"
)

const entryBytes = 24

func main() {
	g := nab.CompleteGraph(5, 2)
	runner, err := nab.NewRunner(nab.Config{
		Graph:    g,
		Source:   1, // replica 1 is the primary proposing entries
		F:        1,
		LenBytes: entryBytes,
		Seed:     7,
		Adversaries: map[nab.NodeID]nab.Adversary{
			4: nab.BlockFlipperAdversary(), // replica 4 lies on the wire
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	commands := []string{
		"SET balance/alice 100    ",
		"SET balance/bob   250    ",
		"XFER alice->bob    40    ",
		"SET audit/flag    true   ",
	}

	logs := map[nab.NodeID][][]byte{}
	disputeRuns := 0
	for i, cmd := range commands {
		entry := make([]byte, entryBytes)
		copy(entry, cmd)
		res, err := runner.RunInstance(entry)
		if err != nil {
			log.Fatal(err)
		}
		if res.Phase3 {
			disputeRuns++
			fmt.Printf("entry %d: misbehaviour detected, dispute control ran (new faulty: %v)\n",
				i, res.NewFaulty)
		}
		for replica, value := range res.Outputs {
			logs[replica] = append(logs[replica], value)
		}
	}

	// Every fault-free replica's log must match the proposed commands.
	for replica, entries := range logs {
		for i, e := range entries {
			want := make([]byte, entryBytes)
			copy(want, commands[i])
			if !bytes.Equal(e, want) {
				log.Fatalf("replica %d entry %d diverged: %q", replica, i, e)
			}
		}
		fmt.Printf("replica %d: %d entries, log consistent\n", replica, len(entries))
	}
	fmt.Printf("done: %d commands replicated, %d dispute-control phases (bound f(f+1)=2)\n",
		len(commands), disputeRuns)
}
