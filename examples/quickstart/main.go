// Quickstart: Byzantine broadcast of a 32-byte value among 4 nodes over a
// unit-capacity complete network, tolerating 1 Byzantine node, in a dozen
// lines of the public API.
package main

import (
	"fmt"
	"log"

	"nab"
)

func main() {
	g := nab.CompleteGraph(4, 1) // K4, every link carries 1 bit per time unit

	runner, err := nab.NewRunner(nab.Config{
		Graph:    g,
		Source:   1, // node 1 broadcasts
		F:        1, // tolerate one Byzantine node
		LenBytes: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	input := []byte("agree on this 32-byte message!!!")
	if len(input) != 32 {
		log.Fatalf("input is %d bytes", len(input))
	}
	res, err := runner.RunInstance(input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("instance %d: gamma=%d rho=%d, phase1=%.1f equality=%.1f flags=%.1f time units\n",
		res.K, res.Gamma, res.Rho, res.Phase1Time, res.EqualityTime, res.FlagTime)
	for node, value := range res.Outputs {
		fmt.Printf("node %d decided: %q\n", node, value)
	}
}
