// Pipelined runtime: broadcast a batch of values with 4 instances in
// flight on the concurrent actor runtime, then compare the measured rate
// and the aggregate model accounting against the lockstep runner and the
// paper's capacity bounds.
package main

import (
	"fmt"
	"log"
	"time"

	"nab"
)

func main() {
	g := nab.CompleteGraph(7, 1) // K7, unit capacities
	cfg := nab.Config{Graph: g, Source: 1, F: 2, LenBytes: 64}

	const q = 32
	inputs := make([][]byte, q)
	for i := range inputs {
		inputs[i] = make([]byte, cfg.LenBytes)
		copy(inputs[i], fmt.Sprintf("pipelined broadcast #%02d", i+1))
	}

	// Lockstep baseline: one instance at a time on the simulator.
	runner, err := nab.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}
	lockStart := time.Now()
	if _, err := runner.Run(inputs); err != nil {
		log.Fatal(err)
	}
	lockWall := time.Since(lockStart)

	// Concurrent runtime: per-node actors over an in-process message bus,
	// 4 instances in flight, schemes and trees cached across instances.
	rt, err := nab.NewPipelinedRunner(nab.PipelineConfig{Config: cfg, Window: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("lockstep:  %d instances in %v (%.1f/s)\n",
		q, lockWall.Round(time.Millisecond), float64(q)/lockWall.Seconds())
	fmt.Printf("pipelined: %d instances in %v (%.1f/s, window %d)\n\n",
		q, res.Wall.Round(time.Millisecond), res.InstancesPerSec(), res.Window)

	capRep, err := nab.AnalyzeCapacity(g, 1, 2, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rt.Report(res, capRep))
}
