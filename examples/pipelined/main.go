// Pipelined runtime: broadcast a stream of values with 4 instances in
// flight on the concurrent actor engine, then compare the measured rate
// and the aggregate model accounting against the lockstep engine and the
// paper's capacity bounds. Both engines run behind the same streaming
// Session API; the lockstep run doubles as the byte-identity oracle.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"nab"
)

const timeUnit = time.Millisecond

func main() {
	g := nab.CompleteGraph(7, 1) // K7, unit capacities
	cfg := nab.Config{Graph: g, Source: 1, F: 2, LenBytes: 64}

	const q = 32
	inputs := make([][]byte, q)
	for i := range inputs {
		inputs[i] = make([]byte, cfg.LenBytes)
		copy(inputs[i], fmt.Sprintf("pipelined broadcast #%02d", i+1))
	}

	// One engine at a time behind the same Session shape: submit the
	// stream, drain, keep the aggregate result.
	run := func(opts ...nab.SessionOption) *nab.PipelineResult {
		ctx := context.Background()
		sess, err := nab.Open(ctx, cfg, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer sess.Close()
		go func() {
			for _, in := range inputs {
				if _, err := sess.Submit(ctx, in); err != nil {
					return
				}
			}
			sess.Drain(ctx)
		}()
		for range sess.Commits() {
		}
		if err := sess.Err(); err != nil {
			log.Fatal(err)
		}
		return sess.Result()
	}

	// Lockstep baseline: one instance at a time on the simulator.
	lockRes := run(nab.WithLockstep())

	// Concurrent engine: per-node actors over an in-process message bus,
	// 4 instances in flight, schemes and trees cached across instances.
	pipeRes := run(nab.WithWindow(4))

	fmt.Printf("lockstep:  %d instances in %v (%.1f/s)\n",
		len(lockRes.Instances), lockRes.Wall.Round(timeUnit), lockRes.InstancesPerSec())
	fmt.Printf("pipelined: %d instances in %v (%.1f/s, window %d)\n\n",
		len(pipeRes.Instances), pipeRes.Wall.Round(timeUnit), pipeRes.InstancesPerSec(), pipeRes.Window)

	capRep, err := nab.AnalyzeCapacity(g, 1, 2, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(nab.NewPipelineReport(g, pipeRes, capRep))
}
